"""Host-based CPU monitoring vs externalised power metering (§VI).

The paper's argument, implemented: a host-resident CPU-usage anomaly
detector is defeated by malware that controls the host — idle mining
keeps the load away from interactive sessions, monitor-aware miners
throttle while Task Manager runs, and rootkit-grade samples tamper with
the readings outright.  An *external* observer (a smart-meter style
power monitor) sees the true draw and is immune to all three.
"""

import enum
from dataclasses import dataclass
from typing import List


__all__ = [
    "CpuAnomalyMonitor",
    "DetectionOutcome",
    "HostState",
    "MinerTrick",
    "PowerMeterMonitor",
    "typical_day_trace",
]


class MinerTrick(enum.Enum):
    """User/monitor-evasion behaviours from §I and §II."""

    NONE = "none"
    IDLE_MINING = "idle_mining"          # mine only when the user is away
    MONITOR_AWARE = "monitor_aware"      # throttle while Task Manager runs
    ROOTKIT = "rootkit"                  # falsify CPU readings


@dataclass
class HostState:
    """One sampled instant of an infected host."""

    user_active: bool
    task_manager_open: bool
    mining_load: float      # CPU fraction the miner would like to burn
    baseline_load: float = 0.07

    def actual_cpu(self, trick: MinerTrick) -> float:
        """CPU the miner really consumes at this instant."""
        load = self.mining_load
        if trick is MinerTrick.IDLE_MINING and self.user_active:
            load = 0.0
        if trick is MinerTrick.MONITOR_AWARE and self.task_manager_open:
            load = 0.0
        return min(1.0, self.baseline_load + load)

    def reported_cpu(self, trick: MinerTrick) -> float:
        """CPU a host-resident monitor *observes* at this instant."""
        actual = self.actual_cpu(trick)
        if trick is MinerTrick.ROOTKIT:
            return self.baseline_load    # readings are falsified
        return actual

    def power_draw_watts(self, trick: MinerTrick, idle_w: float = 45.0,
                         full_w: float = 180.0) -> float:
        """Wall-socket draw: physics cannot be rootkitted."""
        return idle_w + (full_w - idle_w) * self.actual_cpu(trick)


@dataclass
class DetectionOutcome:
    """What a monitor concluded over a trace."""

    samples: int
    alerts: int
    detected: bool

    @property
    def alert_rate(self) -> float:
        return self.alerts / self.samples if self.samples else 0.0


class CpuAnomalyMonitor:
    """Host-resident detector: alerts on sustained high reported CPU."""

    def __init__(self, threshold: float = 0.6,
                 min_alert_fraction: float = 0.3) -> None:
        self.threshold = threshold
        self.min_alert_fraction = min_alert_fraction

    def evaluate(self, trace: List[HostState],
                 trick: MinerTrick) -> DetectionOutcome:
        """Scan a trace; detected when enough samples exceed threshold."""
        alerts = sum(1 for state in trace
                     if state.reported_cpu(trick) > self.threshold)
        detected = (len(trace) > 0
                    and alerts / len(trace) >= self.min_alert_fraction)
        return DetectionOutcome(len(trace), alerts, detected)


class PowerMeterMonitor:
    """External detector on the power line (smart-meter deployment).

    Compares measured draw against the draw *predicted* from the host's
    reported CPU; a sustained gap means something is burning cycles the
    host is not admitting to.
    """

    def __init__(self, gap_watts: float = 25.0,
                 min_alert_fraction: float = 0.3) -> None:
        self.gap_watts = gap_watts
        self.min_alert_fraction = min_alert_fraction

    def evaluate(self, trace: List[HostState],
                 trick: MinerTrick) -> DetectionOutcome:
        """Compare measured draw against CPU-predicted draw over a trace."""
        alerts = 0
        for state in trace:
            measured = state.power_draw_watts(trick)
            predicted = HostState(
                user_active=state.user_active,
                task_manager_open=state.task_manager_open,
                mining_load=0.0,
                baseline_load=state.reported_cpu(trick),
            ).power_draw_watts(MinerTrick.NONE)
            if measured - predicted > self.gap_watts:
                alerts += 1
        detected = (len(trace) > 0
                    and alerts / len(trace) >= self.min_alert_fraction)
        return DetectionOutcome(len(trace), alerts, detected)


def typical_day_trace(mining_load: float = 0.85,
                      hours_active: int = 8) -> List[HostState]:
    """A 24h trace at hourly resolution: office hours + one Task Manager
    check while the user is around."""
    trace = []
    for hour in range(24):
        user_active = 9 <= hour < 9 + hours_active
        task_manager = hour == 14
        trace.append(HostState(
            user_active=user_active,
            task_manager_open=task_manager,
            mining_load=mining_load,
        ))
    return trace
