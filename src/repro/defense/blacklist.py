"""Pool-domain blacklisting and its evasions (§IV-E, §VI).

Commercial guidance suggests blocking known mining pools at the DNS or
egress level.  The paper shows why this underperforms: campaigns front
pools with CNAME aliases of domains they control, route through mining
proxies, or dial raw pool IPs.  :class:`BlacklistDefense` evaluates a
blacklist against extracted miner records and reports exactly which
evasion defeated it per sample.
"""

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from repro.core.records import MinerRecord
from repro.pools.directory import PoolDirectory


@dataclass
class BlacklistReport:
    """Outcome of applying a blacklist to a set of miner records."""

    total_miners: int = 0
    blocked: int = 0
    evaded_by_cname: int = 0
    evaded_by_proxy: int = 0
    evaded_by_raw_ip: int = 0
    evaded_other: int = 0
    blocked_hashes: List[str] = field(default_factory=list)

    @property
    def evaded(self) -> int:
        return (self.evaded_by_cname + self.evaded_by_proxy
                + self.evaded_by_raw_ip + self.evaded_other)

    @property
    def block_rate(self) -> float:
        if self.total_miners == 0:
            return 0.0
        return self.blocked / self.total_miners


class BlacklistDefense:
    """A DNS-level blacklist of known mining-pool domains.

    ``extra_domains`` lets an analyst add discovered aliases — the
    escalation loop the paper implies defenders are losing, because new
    aliases cost attackers one DNS record.
    """

    def __init__(self, pools: PoolDirectory,
                 extra_domains: Optional[Iterable[str]] = None) -> None:
        self._pools = pools
        self._extra: Set[str] = {d.lower() for d in (extra_domains or [])}

    def add_domain(self, domain: str) -> None:
        """Add a domain to the blacklist (analyst-learned alias)."""
        self._extra.add(domain.lower())

    def is_blocked_domain(self, domain: str) -> bool:
        """Whether a domain is on the list or is a known pool."""
        domain = domain.lower()
        if domain in self._extra:
            return True
        return self._pools.is_known_pool_domain(domain)

    def _record_host(self, record: MinerRecord) -> Optional[str]:
        if record.url_pool:
            return record.url_pool.split("://", 1)[1].rsplit(":", 1)[0]
        return None

    def evaluate(self, records: Iterable[MinerRecord],
                 proxy_ips: Optional[Set[str]] = None) -> BlacklistReport:
        """Classify each miner as blocked or evaded-and-how."""
        proxy_ips = proxy_ips or set()
        report = BlacklistReport()
        for record in records:
            if not record.is_miner:
                continue
            report.total_miners += 1
            host = self._record_host(record)
            if host is None:
                report.evaded_other += 1
                continue
            host = host.lower()
            is_ip = all(c.isdigit() or c == "." for c in host)
            if not is_ip and self.is_blocked_domain(host):
                report.blocked += 1
                report.blocked_hashes.append(record.sha256)
            elif host in record.cname_aliases:
                report.evaded_by_cname += 1
            elif is_ip and host in proxy_ips:
                report.evaded_by_proxy += 1
            elif is_ip:
                report.evaded_by_raw_ip += 1
            else:
                report.evaded_other += 1
        return report

    def evaluate_with_alias_learning(self, records: Iterable[MinerRecord],
                                     proxy_ips: Optional[Set[str]] = None
                                     ) -> BlacklistReport:
        """Second-pass blacklist: aliases discovered by the pipeline's
        CNAME de-aliasing are added before evaluation — the paper's own
        countermeasure contribution."""
        records = list(records)
        for record in records:
            for alias in record.cname_aliases:
                self.add_domain(alias)
        return self.evaluate(records, proxy_ips)
