"""Counterfactual PoW-fork cadences (§VI "Changes in the PoW algorithm").

The paper observes that each fork strands the campaigns whose operators
fail to push miner updates (72% / 89% / 96% cumulative die-off over the
three historical forks) and proposes *increasing* fork frequency as a
countermeasure.  :func:`simulate_fork_cadence` replays the ground-truth
campaign population under an alternative fork calendar and reports how
much mining time (and hence revenue share) the ecosystem would retain.
"""

import datetime
from dataclasses import dataclass
from typing import List, Sequence

from repro.common.rng import DeterministicRNG
from repro.common.simtime import Date, POW_FORK_DATES, date_range
from repro.corpus.distributions import BAND_FORK_UPDATE_PROB
from repro.corpus.model import GroundTruthCampaign


@dataclass(frozen=True)
class ForkPolicyOutcome:
    """Ecosystem-level effect of one fork calendar."""

    fork_dates: tuple
    campaigns: int
    surviving_campaigns: int
    total_mining_days: float
    retained_fraction: float    # mining-days vs the no-fork baseline

    @property
    def disruption(self) -> float:
        return 1.0 - self.retained_fraction


def quarterly_forks(start: Date, end: Date) -> List[Date]:
    """A fork every ~91 days between ``start`` and ``end``."""
    return list(date_range(start, end, 91))


def historical_forks() -> List[Date]:
    """The three fork dates of the paper's window."""
    return list(POW_FORK_DATES)


def simulate_fork_cadence(campaigns: Sequence[GroundTruthCampaign],
                          fork_dates: Sequence[Date],
                          seed: int = 7) -> ForkPolicyOutcome:
    """Replay campaign lifetimes under a fork calendar.

    Each campaign's *natural* activity window comes from ground truth;
    at every fork inside the window the operator updates with the
    band-calibrated probability (Table XI behaviour) or the campaign
    ends there.  Returns mining-days retained vs the no-fork baseline,
    the quantity the countermeasure is trying to minimise.
    """
    rng = DeterministicRNG(seed, "fork-policy")
    forks = sorted(fork_dates)
    xmr = [c for c in campaigns
           if c.coin == "XMR" and c.start is not None and c.end is not None
           and c.end > c.start]
    baseline_days = 0.0
    policy_days = 0.0
    survivors = 0
    for campaign in xmr:
        lifetime = (campaign.end - campaign.start).days
        baseline_days += lifetime
        update_prob = BAND_FORK_UPDATE_PROB[campaign.band or 0]
        end = campaign.end
        survived_all = True
        stream = rng.substream(f"c{campaign.campaign_id}")
        for fork in forks:
            if campaign.start < fork < end:
                if not stream.bernoulli(update_prob):
                    end = fork
                    survived_all = False
                    break
        policy_days += (end - campaign.start).days
        if survived_all:
            survivors += 1
    retained = policy_days / baseline_days if baseline_days else 1.0
    return ForkPolicyOutcome(
        fork_dates=tuple(forks),
        campaigns=len(xmr),
        surviving_campaigns=survivors,
        total_mining_days=policy_days,
        retained_fraction=retained,
    )


def compare_cadences(campaigns: Sequence[GroundTruthCampaign],
                     start: Date = datetime.date(2016, 1, 1),
                     end: Date = datetime.date(2019, 4, 30),
                     seed: int = 7) -> List[ForkPolicyOutcome]:
    """No forks vs the historical three vs quarterly forks."""
    return [
        simulate_fork_cadence(campaigns, [], seed=seed),
        simulate_fork_cadence(campaigns, historical_forks(), seed=seed),
        simulate_fork_cadence(campaigns, quarterly_forks(start, end),
                              seed=seed),
    ]
