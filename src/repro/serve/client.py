"""Bundled synchronous client for the intel API.

A thin :mod:`http.client` wrapper (stdlib only, like the server) used
by the bench harness, the CI smoke job and integration tests.  One
client holds one keep-alive connection; a stale connection (server
restarted, idle timeout) is retried once on a fresh socket.
"""

import http.client
import json
from typing import Any, Dict, List, Optional

__all__ = ["IntelClient", "ServeError"]


class ServeError(Exception):
    """A non-2xx response the caller did not opt into handling."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class IntelClient:
    """Synchronous client bound to one server and API key."""

    def __init__(self, host: str, port: int,
                 api_key: Optional[str] = None,
                 timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.api_key = api_key
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        #: status of the most recent exchange (observability/tests).
        self.last_status: Optional[int] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        """Drop the keep-alive connection."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None) -> tuple:
        """One exchange; returns ``(status, payload)``.

        Retries exactly once on a dead keep-alive socket.
        """
        headers = {}
        if self.api_key:
            headers["X-Api-Key"] = self.api_key
        encoded = None
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=encoded,
                             headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, TimeoutError):
                self.close()
                if attempt:
                    raise
        self.last_status = response.status
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            payload = {"raw": raw.decode("utf-8", "replace")}
        return response.status, payload

    def _lookup(self, path: str) -> Optional[Dict[str, Any]]:
        status, payload = self.request("GET", path)
        if status == 200:
            return payload
        if status == 404:
            return None
        raise ServeError(status, payload)

    def _must(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        status, payload = self.request(method, path, body=body)
        if status != 200:
            raise ServeError(status, payload)
        return payload

    # -- endpoint wrappers -------------------------------------------------

    def hash_intel(self, sha256: str) -> Optional[Dict[str, Any]]:
        """GET /v1/hash/{sha}; None on 404."""
        return self._lookup(f"/v1/hash/{sha256}")

    def wallet_intel(self, identifier: str) -> Optional[Dict[str, Any]]:
        """GET /v1/wallet/{addr}; None on 404."""
        return self._lookup(f"/v1/wallet/{identifier}")

    def campaign_intel(self, campaign_id: int
                       ) -> Optional[Dict[str, Any]]:
        """GET /v1/campaign/{id}; None on 404."""
        return self._lookup(f"/v1/campaign/{campaign_id}")

    def domain_intel(self, name: str) -> Optional[Dict[str, Any]]:
        """GET /v1/domain/{d}; None on 404."""
        return self._lookup(f"/v1/domain/{name}")

    def scan(self, iocs: Optional[List[str]] = None,
             text: Optional[str] = None) -> Dict[str, Any]:
        """POST /v1/scan over an IoC list or a free-text blob."""
        body: Dict[str, Any] = {}
        if iocs is not None:
            body["iocs"] = iocs
        if text is not None:
            body["text"] = text
        return self._must("POST", "/v1/scan", body=body)

    def metrics(self) -> Dict[str, Any]:
        """GET /v1/metrics."""
        return self._must("GET", "/v1/metrics")

    def info(self) -> Dict[str, Any]:
        """GET /v1/info."""
        return self._must("GET", "/v1/info")

    def healthz(self) -> Dict[str, Any]:
        """GET /v1/healthz (unauthenticated liveness)."""
        return self._must("GET", "/v1/healthz")

    def __enter__(self) -> "IntelClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
