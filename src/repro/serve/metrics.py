"""Structured per-request metrics for the serving layer.

Every handled request is recorded as one observation — endpoint,
status, latency, index generation, key name — folded into bounded
per-endpoint latency rings and counters, with the most recent
observations kept verbatim as a structured event ring.  ``snapshot()``
renders the whole thing JSON-safe for ``/v1/metrics``.
"""

import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["ServeMetrics", "latency_summary", "percentile"]

#: latency observations retained per endpoint (ring buffer).
LATENCY_WINDOW = 4096
#: structured request events retained verbatim.
EVENT_WINDOW = 256


def percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


def latency_summary(latencies_s: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99/mean/max over raw second-latencies, in ms."""
    ordered = sorted(latencies_s)
    if not ordered:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
                "mean_ms": 0.0, "max_ms": 0.0}
    to_ms = 1000.0
    return {
        "p50_ms": round(percentile(ordered, 50) * to_ms, 3),
        "p95_ms": round(percentile(ordered, 95) * to_ms, 3),
        "p99_ms": round(percentile(ordered, 99) * to_ms, 3),
        "mean_ms": round(sum(ordered) / len(ordered) * to_ms, 3),
        "max_ms": round(ordered[-1] * to_ms, 3),
    }


class ServeMetrics:
    """Bounded-memory request telemetry for one service instance."""

    def __init__(self, clock: Callable[[], float] = time.monotonic
                 ) -> None:
        self._clock = clock
        self._started = clock()
        self._latencies: Dict[str, deque] = {}
        self._requests: Dict[str, int] = {}
        self._statuses: Dict[str, Dict[str, int]] = {}
        self._events: deque = deque(maxlen=EVENT_WINDOW)
        self._swaps = 0
        self._retired: List[int] = []

    def observe(self, endpoint: str, status: int, latency_s: float,
                generation: int, key: str = "") -> None:
        """Record one handled request."""
        ring = self._latencies.get(endpoint)
        if ring is None:
            ring = self._latencies[endpoint] = deque(
                maxlen=LATENCY_WINDOW)
        ring.append(latency_s)
        self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
        by_status = self._statuses.setdefault(endpoint, {})
        by_status[str(status)] = by_status.get(str(status), 0) + 1
        self._events.append({
            "t": round(self._clock() - self._started, 6),
            "endpoint": endpoint,
            "status": status,
            "latency_ms": round(latency_s * 1000.0, 3),
            "generation": generation,
            "key": key,
        })

    def swap(self, old_generation: int, new_generation: int) -> None:
        """Record an index hot swap (old generation now retiring)."""
        self._swaps += 1
        self._events.append({
            "t": round(self._clock() - self._started, 6),
            "endpoint": "swap",
            "from_generation": old_generation,
            "to_generation": new_generation,
        })

    def retired(self, generation: int) -> None:
        """Record that a drained generation was fully retired."""
        self._retired.append(generation)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe aggregate view (the /v1/metrics payload)."""
        endpoints = {}
        for endpoint in sorted(self._requests):
            summary: Dict[str, Any] = {
                "requests": self._requests[endpoint],
                "by_status": dict(sorted(
                    self._statuses.get(endpoint, {}).items())),
            }
            summary.update(latency_summary(
                list(self._latencies.get(endpoint, ()))))
            endpoints[endpoint] = summary
        return {
            "uptime_s": round(self._clock() - self._started, 3),
            "requests_total": sum(self._requests.values()),
            "index_swaps": self._swaps,
            "generations_retired": list(self._retired),
            "endpoints": endpoints,
            "events": list(self._events),
        }
