"""Sustained-QPS benchmark for the serving layer.

Real sockets end to end: a :class:`~repro.serve.http.BackgroundServer`
on its own event loop, hammered by ``concurrency`` client threads
driving a deterministic round-robin query mix (hash / wallet / domain
/ campaign point lookups with a bulk scan every ``scan_every``-th
request).  Halfway through, a second index generation is built and
hot-swapped in under full load — the report asserts no request was
dropped and every response carried exactly one generation, which is
the acceptance property the swap design promises.

Wired into the unified harness (``repro bench --suite serve``) which
runs this in a fresh subprocess and commits ``BENCH_serve.json``.
"""

import threading
import time
from typing import Any, Dict, List

from repro.serve.app import IntelService
from repro.serve.auth import ApiKeyRegistry
from repro.serve.client import IntelClient
from repro.serve.http import BackgroundServer
from repro.serve.index import build_index
from repro.serve.metrics import latency_summary

__all__ = ["measure_serve_point"]

_BENCH_KEY = "bench-key"


def _query_plan(index, scan_every: int) -> List[tuple]:
    """The deterministic per-worker query cycle: (kind, value)."""
    examples = index.examples(limit=16)
    plan: List[tuple] = []
    for table, kind in (("hashes", "hash"), ("wallets", "wallet"),
                        ("domains", "domain"),
                        ("campaigns", "campaign")):
        for value in examples[table]:
            plan.append((kind, value))
    if not plan:
        raise RuntimeError("index is empty; nothing to benchmark")
    # one bulk scan every scan_every requests: a 16-IoC mixed list
    scan_iocs = (examples["hashes"][:6] + examples["wallets"][:5]
                 + examples["domains"][:5])
    spaced: List[tuple] = []
    for i, query in enumerate(plan * max(1, scan_every)):
        if scan_every and i % scan_every == scan_every - 1:
            spaced.append(("scan", scan_iocs))
        spaced.append(query)
    return spaced


def _worker(host: str, port: int, plan: List[tuple], offset: int,
            deadline: float, out: List[Dict[str, Any]]) -> None:
    observations: List[Dict[str, Any]] = []
    with IntelClient(host, port, api_key=_BENCH_KEY) as client:
        position = offset
        while time.perf_counter() < deadline:
            kind, value = plan[position % len(plan)]
            position += 1
            t0 = time.perf_counter()
            if kind == "scan":
                status, payload = client.request(
                    "POST", "/v1/scan", body={"iocs": value})
            else:
                status, payload = client.request(
                    "GET", f"/v1/{kind}/{value}")
            observations.append({
                "kind": kind,
                "status": status,
                "latency_s": time.perf_counter() - t0,
                "generation": payload.get("generation"),
            })
    out.extend(observations)


def measure_serve_point(scale: float = 0.01, seed: int = 2019,
                        duration_s: float = 8.0, concurrency: int = 8,
                        scan_every: int = 10) -> Dict[str, Any]:
    """One sustained-load run; returns the BENCH_serve point dict."""
    from repro.core.pipeline import MeasurementPipeline
    from repro.corpus.generator import generate_world
    from repro.corpus.model import ScenarioConfig

    t0 = time.perf_counter()
    world = generate_world(ScenarioConfig(seed=seed, scale=scale))
    result = MeasurementPipeline(world).run()
    pipeline_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    index = build_index(result, generation=1,
                        source=f"pipeline seed={seed} scale={scale}")
    build_s = time.perf_counter() - t1

    registry = ApiKeyRegistry()
    registry.add(_BENCH_KEY, name="bench")
    service = IntelService(index, registry)
    plan = _query_plan(index, scan_every)
    observations: List[Dict[str, Any]] = []
    with BackgroundServer(service.handle) as server:
        deadline = time.perf_counter() + duration_s
        threads = []
        for worker_id in range(concurrency):
            thread = threading.Thread(
                target=_worker,
                args=(server.host, server.port, plan,
                      worker_id * 7, deadline, observations),
                daemon=True)
            thread.start()
            threads.append(thread)
        # halfway: rebuild the same snapshot as generation 2 and swap
        # it in under full load (the lock-free flip acceptance check).
        time.sleep(duration_s / 2)
        second = build_index(result, generation=2,
                             source=index.source)
        server.call_soon(lambda: service.swap(second))
        for thread in threads:
            thread.join(timeout=duration_s + 30)

    latencies = [o["latency_s"] for o in observations]
    by_kind: Dict[str, Any] = {}
    for kind in sorted({o["kind"] for o in observations}):
        subset = [o["latency_s"] for o in observations
                  if o["kind"] == kind]
        summary = latency_summary(subset)
        summary["requests"] = len(subset)
        by_kind[kind] = summary
    errors = sum(1 for o in observations if o["status"] >= 400)
    generations = sorted({o["generation"] for o in observations
                          if o["generation"] is not None})
    point: Dict[str, Any] = {
        "suite": "serve",
        "scale": scale,
        "seed": seed,
        "duration_s": duration_s,
        "concurrency": concurrency,
        "requests": len(observations),
        "qps": round(len(observations) / duration_s, 1),
        "errors": errors,
        "index": index.counts(),
        "pipeline_s": round(pipeline_s, 3),
        "index_build_s": round(build_s, 3),
        "swaps": 1,
        "generations_seen": generations,
        # every response carried exactly one generation and none failed
        # across the mid-run swap:
        "swap_clean": (errors == 0
                       and all(o["generation"] is not None
                               for o in observations)
                       and set(generations) <= {1, 2}),
        "by_kind": by_kind,
    }
    point.update(latency_summary(latencies))
    return point
