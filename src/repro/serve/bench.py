"""Sustained-QPS benchmark for the serving layer.

Real sockets end to end: a :class:`~repro.serve.http.BackgroundServer`
on its own event loop, hammered by ``concurrency`` client threads
driving a deterministic round-robin query mix (hash / wallet / domain
/ campaign point lookups with a bulk scan every ``scan_every``-th
request).  Halfway through, a second index generation is built and
hot-swapped in under full load — the report asserts no request was
dropped and every response carried exactly one generation, which is
the acceptance property the swap design promises.

``workers > 1`` benchmarks the multi-process fleet instead
(:class:`~repro.serve.fleet.ServerFleet`): the index is built once
pre-fork and shared copy-on-write, the mid-run swap is skipped (a
fleet serves one frozen generation), and the point records which
worker pids actually answered plus the run's peak RSS — the
flat-memory evidence for N workers sharing one index.

Wired into the unified harness (``repro bench --suite serve``) which
runs this in a fresh subprocess and commits ``BENCH_serve.json``.
"""

import threading
import time
from typing import Any, Dict, List

from repro.common.memory import peak_rss_mib, rss_supported
from repro.serve.app import IntelService
from repro.serve.auth import ApiKeyRegistry
from repro.serve.client import IntelClient
from repro.serve.fleet import ServerFleet
from repro.serve.http import BackgroundServer
from repro.serve.index import build_index
from repro.serve.metrics import latency_summary

__all__ = ["measure_serve_point"]

_BENCH_KEY = "bench-key"


def _query_plan(index, scan_every: int) -> List[tuple]:
    """The deterministic per-worker query cycle: (kind, value)."""
    examples = index.examples(limit=16)
    plan: List[tuple] = []
    for table, kind in (("hashes", "hash"), ("wallets", "wallet"),
                        ("domains", "domain"),
                        ("campaigns", "campaign")):
        for value in examples[table]:
            plan.append((kind, value))
    if not plan:
        raise RuntimeError("index is empty; nothing to benchmark")
    # one bulk scan every scan_every requests: a 16-IoC mixed list
    scan_iocs = (examples["hashes"][:6] + examples["wallets"][:5]
                 + examples["domains"][:5])
    spaced: List[tuple] = []
    for i, query in enumerate(plan * max(1, scan_every)):
        if scan_every and i % scan_every == scan_every - 1:
            spaced.append(("scan", scan_iocs))
        spaced.append(query)
    return spaced


def _worker(host: str, port: int, plan: List[tuple], offset: int,
            deadline: float, out: List[Dict[str, Any]],
            served_by: List[int]) -> None:
    observations: List[Dict[str, Any]] = []
    with IntelClient(host, port, api_key=_BENCH_KEY) as client:
        # which server process holds this keep-alive connection
        status, payload = client.request("GET", "/v1/healthz")
        if status == 200 and payload.get("pid") is not None:
            served_by.append(payload["pid"])
        position = offset
        while time.perf_counter() < deadline:
            kind, value = plan[position % len(plan)]
            position += 1
            t0 = time.perf_counter()
            if kind == "scan":
                status, payload = client.request(
                    "POST", "/v1/scan", body={"iocs": value})
            else:
                status, payload = client.request(
                    "GET", f"/v1/{kind}/{value}")
            observations.append({
                "kind": kind,
                "status": status,
                "latency_s": time.perf_counter() - t0,
                "generation": payload.get("generation"),
            })
    out.extend(observations)


def _run_load(host: str, port: int, plan: List[tuple],
              duration_s: float, concurrency: int,
              mid_run=None) -> tuple:
    """Drive ``concurrency`` client threads; returns (observations,
    pids that served them)."""
    observations: List[Dict[str, Any]] = []
    served_by: List[int] = []
    deadline = time.perf_counter() + duration_s
    threads = []
    for worker_id in range(concurrency):
        thread = threading.Thread(
            target=_worker,
            args=(host, port, plan, worker_id * 7, deadline,
                  observations, served_by),
            daemon=True)
        thread.start()
        threads.append(thread)
    if mid_run is not None:
        time.sleep(duration_s / 2)
        mid_run()
    for thread in threads:
        thread.join(timeout=duration_s + 30)
    return observations, sorted(set(served_by))


def measure_serve_point(scale: float = 0.01, seed: int = 2019,
                        duration_s: float = 8.0, concurrency: int = 8,
                        scan_every: int = 10,
                        workers: int = 1) -> Dict[str, Any]:
    """One sustained-load run; returns the BENCH_serve point dict.

    ``workers=1`` exercises the single-process server including the
    mid-run hot swap; ``workers>1`` benchmarks a :class:`ServerFleet`
    of that many forked processes sharing the pre-fork index (no swap
    — a fleet serves one frozen generation).
    """
    from repro.core.pipeline import MeasurementPipeline
    from repro.corpus.generator import generate_world
    from repro.corpus.model import ScenarioConfig

    t0 = time.perf_counter()
    world = generate_world(ScenarioConfig(seed=seed, scale=scale))
    result = MeasurementPipeline(world).run()
    pipeline_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    index = build_index(result, generation=1,
                        source=f"pipeline seed={seed} scale={scale}")
    build_s = time.perf_counter() - t1

    registry = ApiKeyRegistry()
    registry.add(_BENCH_KEY, name="bench")
    service = IntelService(index, registry)
    plan = _query_plan(index, scan_every)
    swaps = 0
    if workers > 1:
        with ServerFleet(service.handle, workers=workers) as fleet:
            observations, served_by = _run_load(
                fleet.host, fleet.port, plan, duration_s, concurrency)
            workers_alive = len(fleet.alive())
    else:
        with BackgroundServer(service.handle) as server:
            # halfway: rebuild the same snapshot as generation 2 and
            # swap it in under full load (the lock-free flip
            # acceptance check).
            def hot_swap():
                second = build_index(result, generation=2,
                                     source=index.source)
                server.call_soon(lambda: service.swap(second))

            observations, served_by = _run_load(
                server.host, server.port, plan, duration_s,
                concurrency, mid_run=hot_swap)
            swaps = 1
            workers_alive = 1

    latencies = [o["latency_s"] for o in observations]
    by_kind: Dict[str, Any] = {}
    for kind in sorted({o["kind"] for o in observations}):
        subset = [o["latency_s"] for o in observations
                  if o["kind"] == kind]
        summary = latency_summary(subset)
        summary["requests"] = len(subset)
        by_kind[kind] = summary
    errors = sum(1 for o in observations if o["status"] >= 400)
    generations = sorted({o["generation"] for o in observations
                          if o["generation"] is not None})
    expected_gens = {1, 2} if swaps else {1}
    point: Dict[str, Any] = {
        "suite": "serve",
        "scale": scale,
        "seed": seed,
        "duration_s": duration_s,
        "concurrency": concurrency,
        "workers": workers,
        "requests": len(observations),
        "qps": round(len(observations) / duration_s, 1),
        "errors": errors,
        "index": index.counts(),
        "pipeline_s": round(pipeline_s, 3),
        "index_build_s": round(build_s, 3),
        "swaps": swaps,
        "generations_seen": generations,
        # every response carried exactly one generation and none
        # failed (across the mid-run swap in single-process mode):
        "swap_clean": (errors == 0
                       and all(o["generation"] is not None
                               for o in observations)
                       and set(generations) <= expected_gens),
        #: distinct server processes that held client connections —
        #: > 1 proves the kernel actually spread the fleet's load
        "serving_pids": len(served_by),
        "workers_alive_at_stop": workers_alive,
        "by_kind": by_kind,
    }
    if rss_supported():
        # one pre-fork index shared COW across every worker: the whole
        # run (pipeline + index build + N servers) under one ceiling
        point["peak_rss_mib"] = round(peak_rss_mib(), 1)
    point.update(latency_summary(latencies))
    return point
