"""Multi-process serving: N forked workers, one listening port.

One asyncio process saturates a single core; the fleet forks ``workers``
child processes that each run their own event loop + :class:`~repro.
serve.http.HttpServer` against the *same* (host, port).  Two socket
strategies, picked at start:

* **SO_REUSEPORT** (Linux/BSD, the default): the parent binds a
  non-listening reservation socket (resolving an ephemeral port once),
  then every child binds + listens on its own ``SO_REUSEPORT`` socket;
  the kernel hashes incoming connections across the listening sockets,
  so accepted load spreads without a user-space dispatcher.
* **fork-inherited listen socket** (fallback): the parent binds and
  listens once; children adopt the inherited fd and race ``accept()``.

Either way the :class:`~repro.serve.index.IntelIndex` is built exactly
once, **pre-fork**: children share its pages copy-on-write, so N
workers cost one index's RSS (the index is immutable, and CPython's
refcount writes only fault the touched pages, a small fraction of the
table payloads).  Hot swap stays a single-process feature — a fleet
serves one frozen generation for its lifetime, which is exactly the
bench / bulk-scan deployment shape.

Children are real processes, not daemons of a thread pool: SIGTERM
asks a child's loop to stop, the child closes its server and leaves
via ``os._exit`` (never running the parent's atexit/finalizers twice).
``stop()`` escalates to SIGKILL only for stragglers.
"""

import asyncio
import os
import select
import signal
import socket
import sys
import time
from typing import List, Optional

from repro.serve.http import Handler, HttpServer, create_listen_socket

__all__ = ["ServerFleet", "reuse_port_supported"]

#: seconds a child gets to bind + report readiness.
_READY_TIMEOUT_S = 30.0
#: seconds between SIGTERM and SIGKILL at shutdown.
_TERM_GRACE_S = 10.0


def reuse_port_supported() -> bool:
    """Whether this platform can balance via ``SO_REUSEPORT``."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:  # pragma: no cover - kernel without the option
        return False
    finally:
        probe.close()


class ServerFleet:
    """``workers`` forked HTTP servers sharing one (host, port).

    The handler (typically ``IntelService.handle`` over a pre-built
    index) is inherited through fork memory — build everything heavy
    *before* ``start()``.  Not a context manager by accident: it is
    one (``with ServerFleet(...) as fleet:``), and ``stop()`` is
    idempotent.

    Requires ``os.fork`` (POSIX).  On platforms without it,
    ``start()`` raises RuntimeError — callers keep the single-process
    :class:`~repro.serve.http.BackgroundServer` path.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.handler = handler
        self.host = host
        self.port = port
        self.workers = workers
        self.pids: List[int] = []
        self._parent_sock: Optional[socket.socket] = None
        self._reuse_port = False

    def start(self) -> "ServerFleet":
        """Bind the port, fork the workers, wait for readiness."""
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise RuntimeError("ServerFleet requires os.fork (POSIX)")
        self._reuse_port = reuse_port_supported()
        if self._reuse_port:
            # non-listening reservation: resolves an ephemeral port and
            # keeps it ours between child binds; never receives traffic
            self._parent_sock = create_listen_socket(
                self.host, self.port, reuse_port=True, listen=False)
        else:  # pragma: no cover - SO_REUSEPORT-less platforms
            self._parent_sock = create_listen_socket(
                self.host, self.port, reuse_port=False, listen=True)
        self.port = self._parent_sock.getsockname()[1]
        ready_fds = []
        try:
            for _ in range(self.workers):
                read_fd, write_fd = os.pipe()
                pid = os.fork()
                if pid == 0:  # child
                    os.close(read_fd)
                    self._child_main(write_fd)  # never returns
                os.close(write_fd)
                ready_fds.append(read_fd)
                self.pids.append(pid)
            self._await_ready(ready_fds)
        except BaseException:
            self.stop()
            raise
        finally:
            for fd in ready_fds:
                os.close(fd)
        return self

    # -- child side --------------------------------------------------------

    def _child_main(self, ready_fd: int) -> None:
        """Worker body; exits the process, never returns."""
        exit_code = 1
        try:
            asyncio.run(self._child_serve(ready_fd))
            exit_code = 0
        except BaseException:  # pragma: no cover - crash diagnostics
            import traceback
            traceback.print_exc(file=sys.stderr)
        finally:
            # bypass parent-inherited atexit/buffers; the child must
            # never fall back into the parent's call stack
            os._exit(exit_code)

    async def _child_serve(self, ready_fd: int) -> None:
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        loop.add_signal_handler(signal.SIGTERM, stopping.set)
        loop.add_signal_handler(signal.SIGINT, stopping.set)
        if self._reuse_port:
            # this worker's own listening socket; the kernel balances
            # connections across all workers' sockets
            sock = create_listen_socket(self.host, self.port,
                                        reuse_port=True)
        else:  # pragma: no cover - fallback path
            sock = self._parent_sock
        server = HttpServer(self.handler, host=self.host,
                            port=self.port, sock=sock)
        await server.start()
        os.write(ready_fd, b"1")
        os.close(ready_fd)
        await stopping.wait()
        await server.stop()

    # -- parent side -------------------------------------------------------

    def _await_ready(self, ready_fds: List[int]) -> None:
        """Block until every child wrote its readiness byte."""
        deadline = time.monotonic() + _READY_TIMEOUT_S
        for fd, pid in zip(ready_fds, self.pids):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(f"worker {pid} not ready in "
                                   f"{_READY_TIMEOUT_S:.0f}s")
            readable, _, _ = select.select([fd], [], [], remaining)
            if not readable or os.read(fd, 1) != b"1":
                raise RuntimeError(f"worker {pid} failed to start")

    def stop(self) -> None:
        """SIGTERM every worker, reap, SIGKILL stragglers."""
        for pid in self.pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + _TERM_GRACE_S
        pending = list(self.pids)
        while pending and time.monotonic() < deadline:
            for pid in list(pending):
                try:
                    done, _status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done = pid  # reaped elsewhere (signal handler etc.)
                if done == pid:
                    pending.remove(pid)
            if pending:
                time.sleep(0.02)
        for pid in pending:  # pragma: no cover - hung worker
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except ProcessLookupError:
                pass
        self.pids = []
        if self._parent_sock is not None:
            self._parent_sock.close()
            self._parent_sock = None

    def alive(self) -> List[int]:
        """Worker pids still running (0 = exited/reaped)."""
        live = []
        for pid in self.pids:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            live.append(pid)
        return live

    def __enter__(self) -> "ServerFleet":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
