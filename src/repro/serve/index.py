"""Immutable threat-intel read index over one measurement result.

The serving layer never queries live pipeline state: each
:class:`IntelIndex` is built once — from a checkpoint restore, a batch
result or a store-backed out-of-core result — and is read-only
thereafter.  Hot swap (:mod:`repro.serve.app`) replaces the whole index
atomically, so a request observes exactly one generation.

Four point-lookup tables mirror the paper's published intelligence:

* ``hash``      — sample sha256 → record, verdict, campaign attribution
* ``wallet``    — identifier → profit profile + campaign attribution
* ``campaign``  — campaign id → the release-index summary dict
* ``domain``    — domain/IP → infrastructure roles (DNS, hosting,
  CNAME alias, proxy, endpoint) with campaign attributions

Bulk ``scan`` reuses the one-pass :class:`repro.perf.scan.AhoCorasick`
kernel: every known indicator becomes a needle, and a submitted IoC
blob is matched in a single pass regardless of indicator count.
"""

from heapq import nsmallest
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.core.pipeline import iter_result_records
from repro.perf.scan import AhoCorasick
from repro.reporting.dataset_export import campaign_summary

__all__ = ["IntelIndex", "build_index"]

#: lookup kinds in dispatch order (hashes are unambiguous, wallets
#: before domains because identifiers never contain dots).
_KINDS = ("hash", "wallet", "domain")


class IntelIndex:
    """Read-only lookup tables + scan automaton for one generation."""

    __slots__ = ("generation", "source", "_hashes", "_wallets",
                 "_campaigns", "_domains", "_keys", "_automaton")

    def __init__(self, generation: int, source: str,
                 hashes: Dict[str, Dict[str, Any]],
                 wallets: Dict[str, Dict[str, Any]],
                 campaigns: Dict[int, Dict[str, Any]],
                 domains: Dict[str, Dict[str, Any]]) -> None:
        self.generation = generation
        self.source = source
        self._hashes = hashes
        self._wallets = wallets
        self._campaigns = campaigns
        self._domains = domains
        #: needle id -> (kind, indicator); sorted per kind so the
        #: automaton layout is a pure function of the indexed state.
        keys: List[Tuple[str, str]] = []
        keys.extend(("hash", value) for value in sorted(hashes))
        keys.extend(("wallet", value) for value in sorted(wallets))
        keys.extend(("domain", value) for value in sorted(domains))
        self._keys = keys
        self._automaton = AhoCorasick(
            [value.encode("utf-8", "surrogateescape")
             for _, value in keys])

    # -- point lookups -----------------------------------------------------

    def hash_intel(self, sha256: str) -> Optional[Dict[str, Any]]:
        """Intel for one sample hash, or None if unknown."""
        return self._hashes.get(sha256.lower())

    def wallet_intel(self, identifier: str) -> Optional[Dict[str, Any]]:
        """Intel for one wallet/email identifier, or None."""
        return self._wallets.get(identifier)

    def campaign_intel(self, campaign_id: int) -> Optional[Dict[str, Any]]:
        """The release-index summary for one campaign id, or None."""
        return self._campaigns.get(campaign_id)

    def domain_intel(self, name: str) -> Optional[Dict[str, Any]]:
        """Infrastructure intel for one domain or IP, or None."""
        return self._domains.get(name)

    def lookup(self, ioc: str) -> Optional[Dict[str, Any]]:
        """Kind-dispatched point lookup over every table."""
        for kind in _KINDS:
            intel = self._table(kind).get(
                ioc.lower() if kind == "hash" else ioc)
            if intel is not None:
                return {"kind": kind, "indicator": ioc, "intel": intel}
        return None

    def _table(self, kind: str) -> Dict[str, Dict[str, Any]]:
        return {"hash": self._hashes, "wallet": self._wallets,
                "domain": self._domains}[kind]

    # -- bulk scan ---------------------------------------------------------

    def scan_text(self, text: str) -> List[Dict[str, Any]]:
        """Known indicators occurring anywhere in ``text``, one pass.

        Substring semantics (an IoC line containing a known wallet
        fires that wallet), so every submitted IoC that *equals* a
        known indicator is guaranteed to fire.  Results are sorted by
        needle id — (kind, indicator) order — for determinism.
        """
        fired = self._automaton.find(
            text.encode("utf-8", "surrogateescape"))
        hits = []
        for needle_id in sorted(fired):
            kind, indicator = self._keys[needle_id]
            hits.append({"kind": kind, "indicator": indicator})
        return hits

    # -- introspection -----------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Table sizes (also the automaton's needle count)."""
        return {
            "hashes": len(self._hashes),
            "wallets": len(self._wallets),
            "campaigns": len(self._campaigns),
            "domains": len(self._domains),
            "needles": len(self._keys),
        }

    def info(self) -> Dict[str, Any]:
        """Generation metadata + table sizes (the /v1/info payload)."""
        out: Dict[str, Any] = {"generation": self.generation,
                               "source": self.source}
        out.update(self.counts())
        return out

    def examples(self, limit: int = 8) -> Dict[str, List[Any]]:
        """A few indicators per table (bench / smoke query seeds).

        ``nsmallest`` instead of a full sort: the hash table is
        corpus-sized and this runs per bench point / smoke probe.
        """
        return {
            "hashes": nsmallest(limit, self._hashes),
            "wallets": nsmallest(limit, self._wallets),
            "domains": nsmallest(limit, self._domains),
            "campaigns": nsmallest(limit, self._campaigns),
        }


def _url_host(url: str) -> Optional[str]:
    """Hostname of an in-the-wild URL (scheme-less URLs tolerated)."""
    split = urlsplit(url if "//" in url else f"//{url}")
    return split.hostname


def _domain_entry(domains: Dict[str, Dict[str, Any]],
                  name: str) -> Dict[str, Any]:
    return domains.setdefault(name, {
        "indicator": name, "roles": set(), "campaigns": set(),
        "samples": 0})


def _mark(domains: Dict[str, Dict[str, Any]], name: Optional[str],
          role: str, campaign_id: Optional[int]) -> None:
    if not name:
        return
    entry = _domain_entry(domains, name)
    entry["roles"].add(role)
    if campaign_id is not None:
        entry["campaigns"].add(campaign_id)


def build_index(result, generation: int = 1,
                source: str = "") -> IntelIndex:
    """Build the immutable index from one measurement result.

    Accepts both result flavours (in-memory records or a columnar
    store — see :func:`repro.core.pipeline.iter_result_records`).
    Every payload value is JSON-safe; sets accumulated during the build
    are frozen to sorted lists before the index is handed out.
    """
    campaigns: Dict[int, Dict[str, Any]] = {}
    campaign_of_sample: Dict[str, int] = {}
    campaign_of_wallet: Dict[str, int] = {}
    for campaign in result.campaigns:
        campaigns[campaign.campaign_id] = campaign_summary(campaign)
        for sha in campaign.sample_hashes:
            campaign_of_sample[sha] = campaign.campaign_id
        for identifier in campaign.identifiers:
            campaign_of_wallet[identifier] = campaign.campaign_id

    hashes: Dict[str, Dict[str, Any]] = {}
    domains: Dict[str, Dict[str, Any]] = {}
    wallet_samples: Dict[str, int] = {}
    wallet_coin: Dict[str, Optional[str]] = {}
    for record in iter_result_records(result):
        cid = campaign_of_sample.get(record.sha256)
        verdict = result.verdicts.get(record.sha256)
        hashes[record.sha256] = {
            "sha256": record.sha256,
            "type": record.type,
            "is_miner": record.is_miner,
            "campaign_id": cid,
            "pool": record.pool,
            "url_pool": record.url_pool,
            "wallets": sorted(record.identifiers),
            "source": record.source,
            "first_seen": record.first_seen.isoformat()
            if record.first_seen else None,
            "positives": record.positives,
            "packer": record.packer,
            "dst_ip": record.dst_ip,
            "malware": verdict.is_malware if verdict else None,
        }
        coins = dict(zip(record.identifiers, record.identifier_coins))
        for identifier in record.identifiers:
            wallet_samples[identifier] = \
                wallet_samples.get(identifier, 0) + 1
            if wallet_coin.get(identifier) is None:
                wallet_coin[identifier] = coins.get(identifier)
        for rr in record.dns_rr:
            entry = _domain_entry(domains, rr)
            entry["roles"].add("dns")
            entry["samples"] += 1
            if cid is not None:
                entry["campaigns"].add(cid)
        for url in record.itw_urls:
            _mark(domains, _url_host(url), "hosting", cid)
        _mark(domains, record.dst_ip, "endpoint", cid)
        for alias in record.cname_aliases:
            _mark(domains, alias, "cname-alias", cid)

    for campaign in result.campaigns:
        cid = campaign.campaign_id
        for alias in campaign.cname_aliases:
            _mark(domains, alias, "cname-alias", cid)
        for proxy in campaign.proxies:
            _mark(domains, proxy, "proxy", cid)
        for ip in campaign.hosting_ips:
            _mark(domains, ip, "hosting", cid)
        for url in campaign.hosting_urls:
            _mark(domains, _url_host(url), "hosting", cid)
    for entry in domains.values():
        entry["roles"] = sorted(entry["roles"])
        entry["campaigns"] = sorted(entry["campaigns"])

    wallets: Dict[str, Dict[str, Any]] = {}
    for identifier in wallet_samples:
        profile = result.profiles.get(identifier)
        wallets[identifier] = {
            "identifier": identifier,
            "coin": wallet_coin.get(identifier),
            "campaign_id": campaign_of_wallet.get(identifier),
            "samples": wallet_samples[identifier],
            "profiled": profile is not None,
            "total_xmr": round(profile.total_paid, 6) if profile else 0.0,
            "total_usd": round(profile.total_usd, 2) if profile else 0.0,
            "num_payments": profile.num_payments if profile else 0,
            "pools": sorted(set(profile.pools)) if profile else [],
            "last_share": profile.last_share.isoformat()
            if profile and profile.last_share else None,
            "active": profile.active if profile else False,
        }

    return IntelIndex(generation=generation, source=source,
                      hashes=hashes, wallets=wallets,
                      campaigns=campaigns, domains=domains)
