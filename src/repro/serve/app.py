"""The intel service: routing, auth, generation tracking, hot swap.

Requests run against exactly one :class:`~repro.serve.index.IntelIndex`
generation, pinned for the request's whole lifetime:

1. the handler *acquires* the current generation (in-flight count +1),
2. answers every lookup from that one immutable index,
3. releases it on the way out.

``swap()`` installs a new index with a single reference assignment —
no lock, no request ever waits.  All bookkeeping runs on the event
loop thread (or, for a cross-thread swap, is marshalled onto it), so
the counters need no synchronisation; the old generation is retired
the moment its in-flight count drains to zero.  A request therefore
never observes two generations, and a swap never interrupts a request
already running against the old index.

``handle()`` is transport-free (an ``HttpRequest -> HttpResponse``
coroutine): tests call it directly, the HTTP front end and the bench
wire it to sockets.
"""

import os
import time
from typing import Any, Awaitable, Callable, Dict, List, Optional

from repro.serve.auth import ApiKeyRegistry
from repro.serve.http import HttpRequest, HttpResponse, json_response
from repro.serve.index import IntelIndex
from repro.serve.metrics import ServeMetrics

__all__ = ["IntelService"]

#: hard ceiling on IoCs accepted by one /v1/scan call.
MAX_SCAN_IOCS = 10_000


class _Generation:
    """One installed index + its in-flight accounting."""

    __slots__ = ("index", "inflight", "retired")

    def __init__(self, index: IntelIndex) -> None:
        self.index = index
        self.inflight = 0
        self.retired = False


class IntelService:
    """Routes intel queries against the live index generation.

    ``request_hook(request, index)`` is an optional async test seam,
    awaited after the request has pinned its generation — hot-swap
    tests park a request there, swap underneath it, and assert the
    parked request still answers from its original index.
    """

    def __init__(self, index: IntelIndex, keys: ApiKeyRegistry,
                 metrics: Optional[ServeMetrics] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 request_hook: Optional[
                     Callable[[HttpRequest, IntelIndex],
                              Awaitable[None]]] = None) -> None:
        self._current = _Generation(index)
        self._keys = keys
        self.metrics = metrics or ServeMetrics()
        self._clock = clock
        self._request_hook = request_hook
        self._retired_generations: List[int] = []

    # -- generation management --------------------------------------------

    @property
    def index(self) -> IntelIndex:
        """The currently installed index."""
        return self._current.index

    @property
    def generation(self) -> int:
        """The currently installed index's generation number."""
        return self._current.index.generation

    @property
    def inflight(self) -> int:
        """Requests currently pinned to the installed generation."""
        return self._current.inflight

    @property
    def retired_generations(self) -> List[int]:
        """Generations fully drained and retired, in retire order."""
        return list(self._retired_generations)

    def swap(self, new_index: IntelIndex) -> int:
        """Install ``new_index``; returns the replaced generation.

        One reference flip — requests already holding the old
        generation keep it until they release; new requests acquire
        the new one.  Call on the event loop thread (the watcher does;
        cross-thread callers marshal via ``loop.call_soon_threadsafe``).
        """
        old = self._current
        self._current = _Generation(new_index)
        self.metrics.swap(old.index.generation, new_index.generation)
        old.retired = True
        if old.inflight == 0:
            self._retire(old)
        return old.index.generation

    def _acquire(self) -> _Generation:
        generation = self._current
        generation.inflight += 1
        return generation

    def _release(self, generation: _Generation) -> None:
        generation.inflight -= 1
        if generation.retired and generation.inflight == 0:
            self._retire(generation)

    def _retire(self, generation: _Generation) -> None:
        self._retired_generations.append(generation.index.generation)
        self.metrics.retired(generation.index.generation)

    # -- request path ------------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve one request end to end (auth, route, metrics)."""
        t0 = self._clock()
        endpoint = self._endpoint_label(request)
        if request.path == "/v1/healthz":
            # pid identifies which fleet worker answered (single-process
            # servers just report their own)
            response = json_response(
                {"status": "ok", "generation": self.generation,
                 "pid": os.getpid()})
            self._observe(endpoint, response, t0, self.generation, "")
            return response
        presented = request.header("x-api-key")
        if not presented:
            bearer = request.header("authorization")
            if bearer.lower().startswith("bearer "):
                presented = bearer[7:].strip()
        api_key = self._keys.authenticate(presented)
        if api_key is None:
            response = json_response(
                {"error": "missing or unknown API key"}, status=401)
            self._observe(endpoint, response, t0, self.generation, "")
            return response
        allowed, retry_after = self._keys.throttle(api_key)
        if not allowed:
            response = json_response(
                {"error": "rate limit exceeded",
                 "retry_after_s": round(retry_after, 3)},
                status=429,
                headers={"retry-after": f"{max(retry_after, 0.0):.3f}"})
            self._observe(endpoint, response, t0, self.generation,
                          api_key.name)
            return response
        generation = self._acquire()
        try:
            if self._request_hook is not None:
                await self._request_hook(request, generation.index)
            response = self._dispatch(request, generation.index)
        finally:
            self._release(generation)
        self._observe(endpoint, response, t0,
                      generation.index.generation, api_key.name)
        return response

    def _observe(self, endpoint: str, response: HttpResponse, t0: float,
                 generation: int, key: str) -> None:
        self.metrics.observe(endpoint, response.status,
                             self._clock() - t0, generation, key)

    @staticmethod
    def _endpoint_label(request: HttpRequest) -> str:
        parts = [p for p in request.path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "v1":
            return f"{request.method} /v1/{parts[1]}"
        return f"{request.method} {request.path}"

    # -- routing -----------------------------------------------------------

    def _dispatch(self, request: HttpRequest,
                  index: IntelIndex) -> HttpResponse:
        parts = [p for p in request.path.split("/") if p]
        if len(parts) < 2 or parts[0] != "v1":
            return self._not_found(index, "unknown endpoint")
        head = parts[1]
        if request.method == "GET" and head == "info":
            return json_response(index.info())
        if request.method == "GET" and head == "metrics":
            payload = self.metrics.snapshot()
            payload["generation"] = index.generation
            return json_response(payload)
        if request.method == "POST" and head == "scan":
            return self._scan(request, index)
        if request.method == "GET" and len(parts) == 3 and \
                head in ("hash", "wallet", "campaign", "domain"):
            return self._point_lookup(head, parts[2], index)
        if head in ("hash", "wallet", "campaign", "domain", "scan"):
            return json_response(
                {"error": f"method {request.method} not allowed",
                 "generation": index.generation}, status=405)
        return self._not_found(index, "unknown endpoint")

    @staticmethod
    def _not_found(index: IntelIndex, message: str) -> HttpResponse:
        return json_response({"error": message, "found": False,
                              "generation": index.generation},
                             status=404)

    def _point_lookup(self, kind: str, value: str,
                      index: IntelIndex) -> HttpResponse:
        if kind == "hash":
            intel = index.hash_intel(value)
        elif kind == "wallet":
            intel = index.wallet_intel(value)
        elif kind == "domain":
            intel = index.domain_intel(value)
        else:  # campaign
            try:
                intel = index.campaign_intel(int(value))
            except ValueError:
                return json_response(
                    {"error": f"campaign id must be an integer, "
                              f"got {value!r}",
                     "generation": index.generation}, status=400)
        if intel is None:
            return self._not_found(index, f"unknown {kind}: {value}")
        return json_response({"kind": kind, "found": True,
                              "generation": index.generation,
                              "intel": intel})

    def _scan(self, request: HttpRequest,
              index: IntelIndex) -> HttpResponse:
        try:
            payload = request.json()
        except ValueError:
            return json_response(
                {"error": "body must be JSON",
                 "generation": index.generation}, status=400)
        if not isinstance(payload, dict):
            return json_response(
                {"error": "body must be a JSON object",
                 "generation": index.generation}, status=400)
        iocs = payload.get("iocs")
        text = payload.get("text")
        if iocs is None and text is None:
            return json_response(
                {"error": "provide 'iocs' (list) or 'text' (string)",
                 "generation": index.generation}, status=400)
        if iocs is not None:
            if not isinstance(iocs, list) or \
                    not all(isinstance(i, str) for i in iocs):
                return json_response(
                    {"error": "'iocs' must be a list of strings",
                     "generation": index.generation}, status=400)
            if len(iocs) > MAX_SCAN_IOCS:
                return json_response(
                    {"error": f"too many IoCs "
                              f"({len(iocs)} > {MAX_SCAN_IOCS})",
                     "generation": index.generation}, status=400)
            blob = "\n".join(iocs)
        else:
            if not isinstance(text, str):
                return json_response(
                    {"error": "'text' must be a string",
                     "generation": index.generation}, status=400)
            blob = text
        hits = index.scan_text(blob)
        resolved: List[Dict[str, Any]] = []
        for hit in hits:
            match = index.lookup(hit["indicator"])
            if match is not None:
                resolved.append({"kind": match["kind"],
                                 "indicator": hit["indicator"],
                                 "intel": match["intel"]})
        return json_response({
            "generation": index.generation,
            "submitted": len(iocs) if iocs is not None else 1,
            "hits": resolved,
            "num_hits": len(resolved),
        })
