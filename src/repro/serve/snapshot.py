"""Index sources: build serving indexes from durable pipeline output.

Two provenances:

* **Checkpoint directories** (:class:`repro.ingest.checkpoint.
  CheckpointStore`) — the streaming service's snapshot + journal.  A
  read-only :class:`~repro.ingest.service.IngestionService` restores
  whatever is durable (snapshot, committed batches, the in-flight
  batch's journaled outcomes) and materialises a result without
  touching the writer's state, so an index can be built *while
  ingestion is still running*.
* **Columnar record stores** (:class:`repro.scale.columnar.
  RecordStore`) — out-of-core segments.  Campaigns, profiles and
  proxies are re-derived from the record stream with the same pure
  derivations the ingestion service uses on restore.

:class:`CheckpointIndexSource` packages the checkpoint flavour behind
the ``stamp()`` / ``build()`` protocol the snapshot watcher polls.
"""

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.aggregation import Campaign, GroupingPolicy
from repro.core.enrichment import CampaignEnricher
from repro.core.pipeline import (
    MeasurementResult,
    PipelineStats,
    proxy_candidate_ip,
)
from repro.core.profit import ProfitAnalyzer, WalletProfile
from repro.core.records import MinerRecord
from repro.core.sanity import SanityVerdict
from repro.corpus.model import SyntheticWorld
from repro.ingest.aggregator import IncrementalAggregator
from repro.ingest.checkpoint import SNAPSHOT_NAME, CheckpointStore
from repro.ingest.service import IngestionService
from repro.scale.shards import ShardedCampaignAggregator
from repro.serve.index import IntelIndex, build_index

__all__ = [
    "CheckpointIndexSource",
    "StoreResult",
    "checkpoint_plan",
    "derive_result_from_records",
    "measurement_from_checkpoint",
    "result_from_store",
]


def checkpoint_plan(checkpoint_dir) -> Optional[Dict[str, Any]]:
    """Feed-plan metadata from a checkpoint's snapshot, if one exists.

    Lets ``repro serve --checkpoint DIR`` regenerate the right world
    without the caller restating ``--seed/--scale/--batch-days``.
    """
    path = Path(checkpoint_dir) / SNAPSHOT_NAME
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as fh:
        snapshot = json.load(fh)
    return {
        "seed": snapshot.get("seed"),
        "scale": snapshot.get("scale"),
        "batch_days": snapshot.get("batch_days"),
        "cursor": snapshot.get("cursor"),
        "finalized": snapshot.get("finalized", False),
    }


def measurement_from_checkpoint(world: SyntheticWorld, checkpoint_dir,
                                batch_days: Optional[int] = None
                                ) -> MeasurementResult:
    """Materialise a result from whatever a checkpoint has made durable.

    ``batch_days`` defaults to the snapshot's own feed plan (falling
    back to 1 for journal-only checkpoints); a mismatched plan raises,
    exactly as resume would.
    """
    if batch_days is None:
        plan = checkpoint_plan(checkpoint_dir)
        batch_days = plan["batch_days"] if plan else 1
    service = IngestionService(world, checkpoint_dir,
                               batch_days=batch_days, resume=True,
                               fsync=False)
    service.restore_state()
    return service.current_result()


def derive_result_from_records(world: SyntheticWorld,
                               records: Iterable[MinerRecord]
                               ) -> MeasurementResult:
    """Re-derive the full result from a bare record stream.

    The same pure derivations the ingestion service replays on
    restore: pool profit profiles, proxy establishment, union-find
    campaign aggregation, enrichment.  Verdicts and funnel counters
    that need per-sample outcomes are unavailable from records alone
    and stay empty/zero.
    """
    kept = list(records)
    profit = ProfitAnalyzer(world.pool_directory)
    profiles: Dict[str, WalletProfile] = {}
    profiled = set()
    for record in kept:
        for identifier in record.identifiers:
            if identifier in profiled:
                continue
            profiled.add(identifier)
            profile = profit.profile_wallet(identifier)
            if profile.records:
                profiles[identifier] = profile
    proxies = set()
    for record in kept:
        candidate = proxy_candidate_ip(record)
        if candidate is None:
            continue
        if any(identifier in profiles
               for identifier in record.identifiers):
            proxies.add(candidate)
    agg = IncrementalAggregator(world.osint, GroupingPolicy.full())
    for record in kept:
        agg.add_record(record)
    agg.add_proxy_ips(proxies)
    campaigns = agg.campaigns()
    enricher = CampaignEnricher(world.vt, world.stock_catalog,
                                world.sample_by_hash)
    enricher.enrich_all(campaigns, profiles)
    stats = PipelineStats()
    stats.miners = sum(1 for r in kept if r.is_miner)
    stats.ancillaries = len(kept) - stats.miners
    return MeasurementResult(records=kept, campaigns=campaigns,
                             profiles=profiles, verdicts={},
                             stats=stats, proxy_ips=proxies)


@dataclass
class StoreResult:
    """A store-backed serving result: everything :func:`repro.serve.
    index.build_index` needs, with the record payload left on disk.

    :func:`repro.core.pipeline.iter_result_records` sees the ``store``
    attribute and streams straight from its columnar segments, so an
    index build over this never materialises the record list.
    Campaigns carry no records (enrichment already ran, streaming).
    """

    store: Any
    campaigns: List[Campaign]
    profiles: Dict[str, WalletProfile]
    stats: PipelineStats
    proxy_ips: Set[str]
    verdicts: Dict[str, SanityVerdict] = field(default_factory=dict)


def result_from_store(world: SyntheticWorld, store,
                      num_shards: int = 8,
                      workers: int = 1) -> StoreResult:
    """Derive a serving result straight from a columnar record store.

    Same pure derivations as :func:`derive_result_from_records`, but
    never holding the record list: profiles and proxies come from two
    streaming passes over the segments, campaigns from the sharded
    aggregator (fanned over ``workers`` processes when > 1), and
    enrichment runs per campaign through the aggregator's
    ``campaign_hook`` — before each campaign's records are dropped.
    Peak memory is the index tables plus one aggregation shard, not
    the corpus.
    """
    profit = ProfitAnalyzer(world.pool_directory)
    profiles: Dict[str, WalletProfile] = {}
    profiled = set()
    stats = PipelineStats()
    for record in store.iter_records():
        if record.is_miner:
            stats.miners += 1
        else:
            stats.ancillaries += 1
        for identifier in record.identifiers:
            if identifier in profiled:
                continue
            profiled.add(identifier)
            profile = profit.profile_wallet(identifier)
            if profile.records:
                profiles[identifier] = profile
    proxies: Set[str] = set()
    for record in store.iter_records():
        candidate = proxy_candidate_ip(record)
        if candidate is None:
            continue
        if any(identifier in profiles
               for identifier in record.identifiers):
            proxies.add(candidate)
    enricher = CampaignEnricher(world.vt, world.stock_catalog,
                                world.sample_by_hash)
    aggregator = ShardedCampaignAggregator(
        world.osint, GroupingPolicy.full(), proxy_ips=proxies,
        num_shards=num_shards, keep_records=False, workers=workers,
        campaign_hook=lambda c: enricher.enrich(c, profiles))
    campaigns = aggregator.aggregate_source(store.iter_records)
    return StoreResult(store=store, campaigns=campaigns,
                       profiles=profiles, stats=stats,
                       proxy_ips=proxies)


class CheckpointIndexSource:
    """The watcher-facing source: checkpoint dir → fresh indexes.

    ``stamp()`` fingerprints the durable files (any committed batch or
    snapshot rotation changes it); ``build()`` restores and indexes.
    Both are synchronous and run off the event loop thread.
    """

    def __init__(self, world: SyntheticWorld, checkpoint_dir,
                 batch_days: Optional[int] = None) -> None:
        self.world = world
        self.store = CheckpointStore(checkpoint_dir, fsync=False)
        self.batch_days = batch_days

    def stamp(self) -> Optional[Tuple[Tuple[str, int, int], ...]]:
        """Current durable-state fingerprint (None = nothing on disk)."""
        return self.store.stamp() or None

    def build(self, generation: int) -> IntelIndex:
        """Restore the checkpoint and build generation ``generation``."""
        result = measurement_from_checkpoint(
            self.world, self.store.directory, batch_days=self.batch_days)
        return build_index(result, generation=generation,
                           source=f"checkpoint:{self.store.directory}")
