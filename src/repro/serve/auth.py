"""API-key authentication and per-key token-bucket rate limiting.

Keys are presented via the ``X-Api-Key`` header (or ``Authorization:
Bearer <key>``).  Each key owns a token bucket: ``rate`` tokens/second
refill up to a ``burst`` ceiling, one token per request; ``rate=0``
means unlimited.  The clock is injectable so tests drive time
explicitly instead of sleeping.
"""

import hmac
import secrets
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = ["ApiKey", "ApiKeyRegistry", "TokenBucket"]


@dataclass
class ApiKey:
    """One issued credential and its rate-limit policy."""

    key: str
    name: str = ""
    #: sustained requests/second this key may spend; 0 = unlimited.
    rate: float = 0.0
    #: bucket ceiling — short bursts above ``rate`` up to this size.
    burst: int = 10


class TokenBucket:
    """Classic token bucket over an injectable monotonic clock."""

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float]) -> None:
        self.rate = rate
        self.burst = max(1, burst)
        self._clock = clock
        self._tokens = float(self.burst)
        self._last = clock()

    def allow(self) -> Tuple[bool, float]:
        """Spend one token; returns (allowed, retry_after_seconds)."""
        now = self._clock()
        self._tokens = min(float(self.burst),
                           self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        needed = 1.0 - self._tokens
        retry = needed / self.rate if self.rate > 0 else float("inf")
        return False, retry


class ApiKeyRegistry:
    """The credential store the request path authenticates against."""

    def __init__(self, clock: Callable[[], float] = time.monotonic
                 ) -> None:
        self._clock = clock
        self._keys: Dict[str, ApiKey] = {}
        self._buckets: Dict[str, TokenBucket] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: str, name: str = "", rate: float = 0.0,
            burst: int = 10) -> ApiKey:
        """Register one key; replaces any previous policy for it."""
        issued = ApiKey(key=key, name=name or key[:8], rate=rate,
                        burst=burst)
        self._keys[key] = issued
        if rate > 0:
            self._buckets[key] = TokenBucket(rate, burst, self._clock)
        else:
            self._buckets.pop(key, None)
        return issued

    def generate(self, name: str = "", rate: float = 0.0,
                 burst: int = 10) -> ApiKey:
        """Mint a fresh random key and register it."""
        return self.add(secrets.token_hex(16), name=name, rate=rate,
                        burst=burst)

    def authenticate(self, presented: Optional[str]) -> Optional[ApiKey]:
        """Constant-time lookup of a presented credential."""
        if not presented:
            return None
        for key, issued in self._keys.items():
            if hmac.compare_digest(key, presented):
                return issued
        return None

    def throttle(self, api_key: ApiKey) -> Tuple[bool, float]:
        """Spend one token for this key; (allowed, retry_after_s)."""
        bucket = self._buckets.get(api_key.key)
        if bucket is None:
            return True, 0.0
        return bucket.allow()
