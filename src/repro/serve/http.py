"""Minimal asyncio HTTP/1.1 front end (stdlib only).

Just enough protocol for the intel API: request-line + headers,
``Content-Length`` bodies, keep-alive, JSON responses.  The transport
is deliberately decoupled from routing — the server takes any async
``handler(HttpRequest) -> HttpResponse``, so tests can call the
application directly and the benchmark can swap transports.

:class:`BackgroundServer` runs the event loop in a daemon thread for
synchronous callers (tests, the bench harness, CI smoke).
"""

import asyncio
import json
import socket
import threading
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "BackgroundServer",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "create_listen_socket",
    "json_response",
    "read_request",
]

#: request bodies above this are rejected with 413.
MAX_BODY_BYTES = 4 * 1024 * 1024
#: request line / header section ceiling.
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized",
    404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)

    def json(self) -> Any:
        """Decode the body as JSON (raises ValueError on garbage)."""
        return json.loads(self.body.decode("utf-8"))


@dataclass
class HttpResponse:
    """One response about to be serialised."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def render(self) -> bytes:
        """Serialise status line + headers + body to wire bytes."""
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}",
                 f"content-type: {self.content_type}",
                 f"content-length: {len(self.body)}"]
        lines.extend(f"{name}: {value}"
                     for name, value in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body


def json_response(payload: Any, status: int = 200,
                  headers: Optional[Dict[str, str]] = None
                  ) -> HttpResponse:
    """Build an HttpResponse carrying a JSON document."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return HttpResponse(status=status, body=body,
                        headers=dict(headers or {}))


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[HttpRequest]:
    """Parse one request off the stream; None on clean EOF.

    Raises ValueError on malformed input (the connection handler turns
    that into a 400 and closes).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise ValueError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ValueError("request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise ValueError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValueError("body too large")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    query = {name: values[-1]
             for name, values in parse_qs(split.query).items()}
    return HttpRequest(method=method.upper(), target=target,
                       path=unquote(split.path), query=query,
                       headers=headers, body=body)


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


def create_listen_socket(host: str, port: int,
                         reuse_port: bool = False,
                         listen: bool = True) -> socket.socket:
    """A bound TCP socket, ready for :class:`HttpServer` (``sock=``).

    ``reuse_port`` sets ``SO_REUSEPORT`` before binding, letting N
    independent server processes listen on the same (host, port) with
    the kernel balancing accepted connections across them — the
    multi-process serving fleet's socket strategy.  ``listen=False``
    binds without listening (the fleet parent holds such a socket
    purely as a port reservation; a non-listening ``SO_REUSEPORT``
    socket never receives connections).

    Raises OSError if ``reuse_port`` is requested on a platform
    without ``SO_REUSEPORT`` — callers fall back to fork-inherited
    listen sockets (see :class:`repro.serve.fleet.ServerFleet`).
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise OSError("SO_REUSEPORT not supported")
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


class HttpServer:
    """asyncio streams server around one async request handler.

    ``sock`` (a pre-bound listening socket) overrides host/port
    binding — the multi-process fleet passes each worker its own
    ``SO_REUSEPORT`` socket, or the fork-inherited parent one.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0,
                 sock: Optional[socket.socket] = None) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self._sock = sock
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "HttpServer":
        """Bind (or adopt ``sock``) and start accepting; resolves the
        real port."""
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock,
                limit=MAX_HEADER_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port,
                limit=MAX_HEADER_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ValueError as exc:
                    writer.write(json_response(
                        {"error": str(exc)}, status=400).render())
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    response = await self.handler(request)
                except Exception as exc:  # noqa: BLE001 — 500 boundary
                    response = json_response(
                        {"error": f"internal error: {exc}"}, status=500)
                close = (request.header("connection").lower() == "close")
                if close:
                    response.headers["connection"] = "close"
                writer.write(response.render())
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange
        except asyncio.CancelledError:
            # server shutdown with the connection idle; finishing
            # normally keeps the streams done-callback from re-raising
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


class BackgroundServer:
    """An HttpServer on its own event-loop thread (sync callers).

    Context-manager friendly::

        with BackgroundServer(app.handle) as server:
            client = IntelClient("127.0.0.1", server.port)
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._handler = handler
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[HttpServer] = None
        self._started = threading.Event()

    def start(self) -> "BackgroundServer":
        """Spin up the loop thread; returns once the port is bound."""
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._server = HttpServer(self._handler, host=self.host,
                                  port=self._requested_port)
        self._loop.run_until_complete(self._server.start())
        self.port = self._server.port
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._server.stop())
            # drain keep-alive connection tasks before closing the loop
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.close()

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Schedule a callback on the server's loop (thread-safe)."""
        if self._loop is None:
            raise RuntimeError("server not started")
        self._loop.call_soon_threadsafe(callback)

    def stop(self) -> None:
        """Stop the loop and join the thread."""
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop = None
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
