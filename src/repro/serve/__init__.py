"""repro.serve — the threat-intel serving layer.

Turns the batch reproduction's knowledge base (hash→campaign,
wallet→profit, domain/IP→infrastructure) into a queryable service:
immutable read indexes built from checkpoint snapshots or columnar
record stores, a stdlib-asyncio HTTP front end with API-key auth and
per-key rate limits, lock-free hot swap onto new snapshots, and
structured per-request metrics.  See ``docs/serving.md``.
"""

__all__ = []
