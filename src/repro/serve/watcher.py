"""Snapshot watcher: polls a checkpoint, rebuilds and hot-swaps.

The watcher runs as a task on the serving event loop.  Each poll
fingerprints the checkpoint's durable files (``stamp()``); when the
fingerprint changes, the next index generation is built **off the loop
thread** (``run_in_executor``, so queries keep flowing during the
restore) and then installed with one atomic ``swap()`` back on the
loop.  The stamp is recorded *before* the build — if the checkpoint
advances mid-build, the next poll sees a new fingerprint and rebuilds.
"""

import asyncio
from typing import Optional

__all__ = ["SnapshotWatcher"]


class SnapshotWatcher:
    """Poll-rebuild-swap loop over an index source.

    ``source`` implements the :class:`~repro.serve.snapshot.
    CheckpointIndexSource` protocol: ``stamp()`` (None or a comparable
    fingerprint) and ``build(generation)``.
    """

    def __init__(self, service, source,
                 interval_s: float = 2.0) -> None:
        self.service = service
        self.source = source
        self.interval_s = interval_s
        self.swaps = 0
        self._last_stamp = None

    def prime(self) -> None:
        """Record the current stamp as already served.

        Call when the service was started from an index built off this
        same source, so the first poll doesn't rebuild it redundantly.
        """
        self._last_stamp = self.source.stamp()

    async def poll_once(self) -> bool:
        """One poll cycle; True iff a new generation was installed."""
        loop = asyncio.get_event_loop()
        stamp = await loop.run_in_executor(None, self.source.stamp)
        if stamp is None or stamp == self._last_stamp:
            return False
        self._last_stamp = stamp
        generation = self.service.generation + 1
        index = await loop.run_in_executor(
            None, self.source.build, generation)
        self.service.swap(index)
        self.swaps += 1
        return True

    async def run_forever(self) -> None:
        """Poll at ``interval_s`` until cancelled."""
        while True:
            await self.poll_once()
            await asyncio.sleep(self.interval_s)
