"""Low-entropy pseudo machine code for synthetic binaries.

Real executable code sits around 5.5-6.5 bits/byte of entropy; packed
or encrypted payloads approach 8.0, which is what the paper's entropy
heuristic (threshold 7.5) exploits.  Uniform random bytes would make
every *unpacked* synthetic binary look encrypted, so sample bodies are
generated here instead: opcode-like bytes drawn from a skewed alphabet
with repeated basic blocks, landing entropy in the real-code range.
"""

from typing import List

from repro.common.rng import DeterministicRNG

#: a compact "instruction set": common opcodes appear far more often.
_COMMON = bytes([0x8B, 0x89, 0xE8, 0x83, 0x48, 0x55, 0x5D, 0xC3,
                 0x90, 0x74, 0x75, 0x85, 0x31, 0x01, 0x00, 0xFF])
_RARE = bytes(range(0x40, 0x80))

_BLOCK = 24  # bytes per repeated basic block


def pseudo_code(rng: DeterministicRNG, size: int) -> bytes:
    """Generate ``size`` bytes of code-like, compressible content."""
    if size <= 0:
        return b""
    # This is the hottest loop of world generation (one call per sample
    # body), so the underlying random.Random methods are bound locally:
    # the draw sequence is untouched — bernoulli(p) is random() < p and
    # choice/randint delegate 1:1 — only attribute lookups go away.
    _random = rng._random.random
    _choice = rng._random.choice
    _randint = rng._random.randint
    # Build a small library of basic blocks, then emit them with reuse.
    library: List[bytes] = []
    for _ in range(max(4, size // (_BLOCK * 8))):
        block = bytearray()
        for _ in range(_BLOCK):
            if _random() < 0.8:
                block.append(_choice(_COMMON))
            else:
                block.append(_choice(_RARE))
        library.append(bytes(block))
    out = bytearray()
    while len(out) < size:
        out += _choice(library)
        if _random() < 0.3:
            out += b"\x90" * _randint(1, 6)  # nop sled padding
    return bytes(out[:size])
