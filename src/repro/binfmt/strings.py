"""Printable-string extraction from raw bytes (the ``strings`` analog).

Static analysis runs this over unpacked binaries to surface embedded
pool URLs, wallets and command lines (§III-C).
"""

import re
from typing import List


def extract_strings(data: bytes, min_length: int = 6) -> List[str]:
    """Return all printable ASCII runs of at least ``min_length`` chars."""
    if min_length < 1:
        raise ValueError("min_length must be >= 1")
    pattern = re.compile(rb"[\x20-\x7e]{%d,}" % min_length)
    return [m.group().decode("ascii") for m in pattern.finditer(data)]
