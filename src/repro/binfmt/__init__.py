"""Synthetic executable substrate.

The paper's static analysis inspects real PE/ELF/JAR malware: magic-number
checks (§III-B), embedded-string extraction (wallets, pool URLs), packer
identification with the F-Prot unpacker, and Shannon entropy as a fallback
obfuscation signal (threshold 7.5, §IV-E).

We cannot ship real malware, so this package defines the ``SXE`` container:
a byte-level executable format carrying genuine PE/ELF/JAR magic numbers,
sections with code/data/config, and packer transforms that behave like the
packers in Table X (UPX unpackable and fingerprintable; Enigma-style
crypters fingerprint-less and high-entropy).  Every static-analysis code
path of the paper runs unmodified against these binaries.
"""

from repro.binfmt.format import (
    ExecutableKind,
    Section,
    SynthBinary,
    build_binary,
    magic_kind,
    parse_binary,
)
from repro.binfmt.entropy import shannon_entropy
from repro.binfmt.packers import (
    PACKERS,
    PackedBinary,
    Packer,
    identify_packer,
    pack,
    unpack,
)
from repro.binfmt.strings import extract_strings

__all__ = [
    "ExecutableKind",
    "Section",
    "SynthBinary",
    "build_binary",
    "magic_kind",
    "parse_binary",
    "shannon_entropy",
    "PACKERS",
    "PackedBinary",
    "Packer",
    "identify_packer",
    "pack",
    "unpack",
    "extract_strings",
]
