"""The SXE synthetic executable container.

Layout::

    <magic>            real PE/ELF/JAR magic bytes (or none for scripts)
    b"SXE1"            container marker
    u16                section count (big endian)
    per section:
        u8             name length
        bytes          name (ascii)
        u32            body length (big endian)
        bytes          body

Sections in use:

``.text``    pseudo-code bytes (low entropy, compressible)
``.data``    NUL-separated embedded strings (configs, URLs, wallets)
``.rsrc``    filler resources
"""

import enum
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import BinaryFormatError

MARKER = b"SXE1"

_MAGICS = {
    "PE": b"MZ",
    "ELF": b"\x7fELF",
    "JAR": b"PK\x03\x04",
}


class ExecutableKind(enum.Enum):
    """Executable container types the sanity check accepts (§III-B)."""

    PE = "PE"
    ELF = "ELF"
    JAR = "JAR"
    SCRIPT = "SCRIPT"  # not an executable: filtered by is_executable
    DATA = "DATA"      # arbitrary non-executable bytes

    @property
    def magic(self) -> bytes:
        return _MAGICS.get(self.value, b"")


@dataclass
class Section:
    """One named byte region of an SXE binary."""

    name: str
    body: bytes

    def encoded(self) -> bytes:
        """Wire encoding of the section (length-prefixed name and body)."""
        name_bytes = self.name.encode("ascii")
        if len(name_bytes) > 255:
            raise BinaryFormatError("section name too long")
        return (
            struct.pack(">B", len(name_bytes))
            + name_bytes
            + struct.pack(">I", len(self.body))
            + self.body
        )


@dataclass
class SynthBinary:
    """Parsed view of an SXE binary."""

    kind: ExecutableKind
    sections: List[Section] = field(default_factory=list)

    def section(self, name: str) -> Optional[Section]:
        """The section named ``name``, or None when absent."""
        for sec in self.sections:
            if sec.name == name:
                return sec
        return None

    @property
    def data_strings(self) -> List[str]:
        """Embedded strings from the ``.data`` section."""
        sec = self.section(".data")
        if sec is None:
            return []
        return [
            part.decode("utf-8", "replace")
            for part in sec.body.split(b"\x00")
            if part
        ]

    @property
    def config(self) -> Optional[dict]:
        """Decoded JSON miner config from ``.config``, if present."""
        sec = self.section(".config")
        if sec is None:
            return None
        try:
            return json.loads(sec.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None


def build_binary(
    kind: ExecutableKind,
    *,
    code: bytes = b"",
    strings: Optional[List[str]] = None,
    config: Optional[Dict] = None,
    resources: bytes = b"",
) -> bytes:
    """Assemble raw SXE bytes for a binary with the given contents."""
    sections: List[Section] = []
    if code:
        sections.append(Section(".text", code))
    if strings:
        sections.append(
            Section(".data", b"\x00".join(s.encode("utf-8") for s in strings))
        )
    if config is not None:
        sections.append(
            Section(".config", json.dumps(config, sort_keys=True).encode("utf-8"))
        )
    if resources:
        sections.append(Section(".rsrc", resources))
    payload = MARKER + struct.pack(">H", len(sections))
    for sec in sections:
        payload += sec.encoded()
    return kind.magic + payload


def magic_kind(raw: bytes) -> ExecutableKind:
    """Classify raw bytes by magic number, like the paper's header check."""
    for name, magic in _MAGICS.items():
        if raw.startswith(magic):
            return ExecutableKind(name)
    if raw.startswith(b"#!") or raw.startswith(b"<script"):
        return ExecutableKind.SCRIPT
    return ExecutableKind.DATA


def parse_binary(raw: bytes) -> SynthBinary:
    """Parse raw SXE bytes; raises BinaryFormatError for foreign data.

    Packed binaries (see :mod:`repro.binfmt.packers`) keep their magic but
    hide the SXE marker behind the packer stub, so parsing them raises —
    exactly like a real unpacker-less static pass on a packed PE.
    """
    kind = magic_kind(raw)
    if kind in (ExecutableKind.SCRIPT, ExecutableKind.DATA):
        raise BinaryFormatError("not an SXE executable")
    offset = len(kind.magic)
    if raw[offset:offset + len(MARKER)] != MARKER:
        raise BinaryFormatError("missing SXE marker (packed or corrupt)")
    offset += len(MARKER)
    if offset + 2 > len(raw):
        raise BinaryFormatError("truncated section count")
    (count,) = struct.unpack_from(">H", raw, offset)
    offset += 2
    sections: List[Section] = []
    for _ in range(count):
        if offset + 1 > len(raw):
            raise BinaryFormatError("truncated section header")
        name_len = raw[offset]
        offset += 1
        name = raw[offset:offset + name_len].decode("ascii", "replace")
        offset += name_len
        if offset + 4 > len(raw):
            raise BinaryFormatError("truncated section length")
        (body_len,) = struct.unpack_from(">I", raw, offset)
        offset += 4
        body = raw[offset:offset + body_len]
        if len(body) != body_len:
            raise BinaryFormatError("truncated section body")
        offset += body_len
        sections.append(Section(name, body))
    return SynthBinary(kind=kind, sections=sections)
