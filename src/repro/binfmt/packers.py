"""Packer / crypter transforms (Table X of the paper).

A *packer* wraps the original binary behind a stub: the executable magic
is preserved (the file still looks like a PE), followed by a packer
signature and the transformed payload.  Known packers (UPX, NSIS, ...)
are fingerprintable by signature and reversible — the analog of the
F-Prot unpacker the paper uses.  Crypters (Enigma-style, or custom ones
bought in underground markets) leave no signature and produce
high-entropy payloads, so the only static signal left is entropy.
"""

import hashlib
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import BinaryFormatError
from repro.binfmt.format import ExecutableKind, magic_kind

_STUB = b"\x90" * 16  # pseudo decompression stub


__all__ = [
    "PackedBinary",
    "Packer",
    "identify_packer",
    "is_packed",
    "pack",
    "pack_chain",
    "packer_names",
    "unpack",
]


def _xor_stream(data: bytes, key: bytes) -> bytes:
    """XOR ``data`` with a SHA-256-expanded keystream (involutive)."""
    stream = bytearray()
    counter = 0
    while len(stream) < len(data):
        stream += hashlib.sha256(key + counter.to_bytes(4, "big")).digest()
        counter += 1
    return bytes(b ^ s for b, s in zip(data, stream))


@dataclass(frozen=True)
class Packer:
    """One packer family.

    ``signature`` is the on-disk fingerprint (empty for crypters, which
    is what makes them invisible to signature-based packer ID).
    ``compresses`` selects zlib (low-ish entropy, like real UPX output of
    structured binaries) versus an XOR keystream (entropy ~8.0).
    ``unpackable`` marks families our F-Prot analog can reverse.
    ``is_compression_only`` marks plain archive formats the paper does
    not count as obfuscation (§IV-E: 'compression algorithms ... are not
    considered obfuscation').
    """

    name: str
    signature: bytes
    compresses: bool = True
    unpackable: bool = True
    is_compression_only: bool = False


#: Families from Table X, most common first (UPX 328,493 samples).
PACKERS: Dict[str, Packer] = {
    "UPX": Packer("UPX", b"UPX!"),
    "NSIS": Packer("NSIS", b"NullsoftInst", is_compression_only=False),
    "maxorder": Packer("maxorder", b"MAXORDER"),
    "SFX": Packer("SFX", b"SFX7z\x00", is_compression_only=True),
    "INNO": Packer("INNO", b"Inno Setup"),
    "eval": Packer("eval", b"EVALPK\x01", compresses=False, unpackable=False),
    "docwrite": Packer("docwrite", b"DOCWRITE", compresses=False, unpackable=False),
    "ARJ": Packer("ARJ", b"\x60\xea", is_compression_only=True),
    "CAB": Packer("CAB", b"MSCF", is_compression_only=True),
    "Enigma": Packer("Enigma", b"", compresses=False, unpackable=False),
}

#: Crypters sold in underground markets: no signature, not unpackable.
CUSTOM_CRYPTER = Packer("custom", b"", compresses=False, unpackable=False)


@dataclass
class PackedBinary:
    """Raw bytes of a packed binary plus which packer produced it."""

    raw: bytes
    packer: Packer


def pack(raw: bytes, packer: Packer, key: bytes = b"k3y") -> bytes:
    """Pack ``raw`` with ``packer``, preserving the executable magic."""
    kind = magic_kind(raw)
    if kind in (ExecutableKind.SCRIPT, ExecutableKind.DATA):
        raise BinaryFormatError("can only pack executables")
    magic = kind.magic
    inner = raw[len(magic):]
    if packer.compresses:
        payload = zlib.compress(inner, level=9)
    else:
        payload = _xor_stream(inner, key)
    return magic + _STUB + packer.signature + b"\x00" + payload


def identify_packer(raw: bytes) -> Optional[Packer]:
    """Fingerprint a packed binary by signature (the F-Prot analog).

    Returns None for unpacked binaries and for signature-less crypters
    (Enigma/custom), for which only the entropy heuristic remains.
    """
    kind = magic_kind(raw)
    if kind in (ExecutableKind.SCRIPT, ExecutableKind.DATA):
        return None
    window = raw[len(kind.magic):len(kind.magic) + len(_STUB) + 16]
    for packer in PACKERS.values():
        if packer.signature and packer.signature in window:
            return packer
    return None


def unpack(raw: bytes, key: bytes = b"k3y") -> bytes:
    """Reverse a known packer; raises for crypters or unpacked input."""
    kind = magic_kind(raw)
    packer = identify_packer(raw)
    if packer is None:
        raise BinaryFormatError("no known packer signature")
    if not packer.unpackable:
        raise BinaryFormatError(f"packer {packer.name} is not unpackable")
    magic = kind.magic
    prefix = magic + _STUB + packer.signature + b"\x00"
    payload = raw[len(prefix):]
    if packer.compresses:
        try:
            inner = zlib.decompress(payload)
        except zlib.error as exc:
            raise BinaryFormatError(f"corrupt packed payload: {exc}") from exc
    else:
        inner = _xor_stream(payload, key)
    return magic + inner


def is_packed(raw: bytes) -> bool:
    """True when a known packer signature is present."""
    return identify_packer(raw) is not None


def packer_names() -> List[str]:
    """Names of every registered packer family."""
    return list(PACKERS)


def pack_chain(raw: bytes, packers: Tuple[Packer, ...]) -> bytes:
    """Apply several packers in sequence (seen in layered droppers)."""
    for packer in packers:
        raw = pack(raw, packer)
    return raw
