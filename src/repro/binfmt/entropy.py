"""Shannon entropy of byte strings.

The paper flags a sample as obfuscated when no known packer is identified
and its entropy exceeds 7.5 bits/byte (8.0 = uniform random), a threshold
chosen to be more conservative than prior packed-software detectors.
"""

import math
from collections import Counter

#: Paper's obfuscation threshold (§IV-E).
OBFUSCATION_THRESHOLD = 7.5


__all__ = [
    "looks_obfuscated",
    "shannon_entropy",
]


def shannon_entropy(data: bytes) -> float:
    """Shannon entropy in bits per byte; 0.0 for empty input."""
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def looks_obfuscated(data: bytes, threshold: float = OBFUSCATION_THRESHOLD) -> bool:
    """True when entropy exceeds the obfuscation threshold."""
    return shannon_entropy(data) > threshold
