"""Hand-built fixtures for the paper's two case studies (§V).

**Freebuf (C#627)** — the most profitable campaign: ~163K XMR over
three years with 7 wallets and 66 samples, held together by the domain
aliases ``xt.freebuf.info`` / ``x.alibuf.com`` / ``xmr.honker.info``
(all fronting minexmr; alibuf also fronted crypto-pool earlier).  After
the April 2018 fork it concentrated on minexmr; two wallets were banned
there in October 2018 following the authors' report, after which the
operator fell back to ppxxmr at much-reduced payment volume.

**USA-138** — ~7.2K XMR, 137 samples, 4 wallets (three XMR plus one
Electroneum wallet worth about 5 USD), no stock tools, no proxies,
43 UPX-packed samples; infrastructure anchored on the Chinese host
221.9.251.236 and the dual-use domain ``4i7i.com`` (malware host at
``http://4i7i.com/11.exe`` *and* pool alias at ``pool.4i7i.com``).
It survived the October 2018 fork and was still mining at crypto-pool
at the end of the measurement.
"""

import datetime
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from repro.common.simtime import Date, date_range
from repro.corpus.model import GroundTruthCampaign

if TYPE_CHECKING:  # pragma: no cover
    from repro.corpus.generator import EcosystemGenerator

#: (phase start, phase end, {pool: hashrate share}) — Freebuf timeline.
_FREEBUF_PHASES = [
    (datetime.date(2016, 6, 15), datetime.date(2018, 4, 6),
     {"crypto-pool": 0.40, "ppxxmr": 0.18, "supportxmr": 0.12,
      "monerohash": 0.10, "prohash": 0.10, "minexmr": 0.10}),
    (datetime.date(2018, 4, 6), datetime.date(2018, 10, 18),
     {"minexmr": 1.0}),
    (datetime.date(2018, 10, 18), datetime.date(2019, 4, 30),
     {"ppxxmr": 1.0}),
]

_FREEBUF_TARGET_XMR = 163_756.0
_USA138_TARGET_XMR = 7_242.0

#: the authors reported the wallets in September 2018; minexmr banned
#: the two active wallets in October (Fig. 8).
REPORT_DATE = datetime.date(2018, 9, 27)
BAN_DATE = datetime.date(2018, 10, 10)


def _drive_phases(gen: "EcosystemGenerator",
                  campaign: GroundTruthCampaign,
                  phases: Sequence[Tuple[Date, Date, Dict[str, float]]],
                  target_xmr: float,
                  wallet_for_day,
                  bot_ips: int,
                  post_ban_throttle: float = 0.12,
                  stride: int = 5) -> float:
    """Replay a phased mining schedule and scale it onto ``target_xmr``.

    ``wallet_for_day(day) -> wallet`` selects the active wallet;
    ``post_ban_throttle`` models the reduced botnet capacity after the
    October 2018 intervention + fork (the paper: payments "considerably
    reduced, nearly turning it off").
    """
    from repro.chain.emission import MONERO_EMISSION, network_hashrate_hs

    # First pass: lifetime XMR per unit of network *share* (the botnet
    # holds a constant fraction of network hashrate as both grow).
    factor = 0.0
    for start, end, weights in phases:
        for day in date_range(start, end, stride):
            throttle = post_ban_throttle if day >= BAN_DATE else 1.0
            emission = MONERO_EMISSION.daily_emission(day)
            for pool_name, weight in weights.items():
                fee = gen.pools.get(pool_name).config.fee
                factor += emission * weight * (1 - fee) * stride * throttle
    share = target_xmr / factor if factor > 0 else 0.0
    campaign.bot_ips = bot_ips
    earned = 0.0
    reported = False
    for start, end, weights in phases:
        for day in date_range(start, end, stride):
            throttle = post_ban_throttle if day >= BAN_DATE else 1.0
            wallet = wallet_for_day(day)
            if not reported and day >= REPORT_DATE:
                # The authors report every campaign wallet to the
                # biggest pools (two were banned at minexmr, Fig. 8).
                for pool in gen.pools.transparent_pools():
                    for identifier in campaign.identifiers:
                        pool.report_wallet(identifier, BAN_DATE)
                reported = True
            day_rate_base = share * network_hashrate_hs(day)
            for pool_name, weight in weights.items():
                pool = gen.pools.get(pool_name)
                day_rate = day_rate_base * weight * throttle * stride
                if pool.is_banned(wallet):
                    # operator falls back to another configured pool
                    fallback = next(
                        (gen.pools.get(n) for n in campaign.pools
                         if not gen.pools.get(n).is_banned(wallet)),
                        None,
                    )
                    if fallback is None:
                        continue
                    pool = fallback
                earned += pool.credit_mining_day(
                    wallet, day, day_rate,
                    src_ips=min(bot_ips, 400),
                )
    campaign.actual_xmr = earned
    return earned


def build_freebuf_campaign(gen: "EcosystemGenerator") -> GroundTruthCampaign:
    """Construct and replay the Freebuf campaign."""
    campaign = GroundTruthCampaign(
        campaign_id=gen._next_campaign_id(),
        actor_id=gen._campaign_counter,
        identifier_kind="wallet",
        coin="XMR",
        label="Freebuf",
        band=3,
        fixed_sample_count=59,   # + 7 ancillaries => 66 total
        custom_driven=True,
    )
    campaign.identifiers = [gen.wallets.new_address("XMR") for _ in range(7)]
    campaign.start = _FREEBUF_PHASES[0][0]
    campaign.end = _FREEBUF_PHASES[-1][1]
    campaign.updates_after_forks = True
    campaign.target_xmr = _FREEBUF_TARGET_XMR
    campaign.pools = ["minexmr", "crypto-pool", "ppxxmr", "supportxmr",
                      "monerohash", "prohash"]
    campaign.uses_cname = True
    # xt.freebuf.info and xmr.honker.info alias minexmr; x.alibuf.com
    # aliased crypto-pool first, then minexmr (two pools, one alias).
    gen.dns.add_cname("xt.freebuf.info", "pool.minexmr.com",
                      valid_from=campaign.start)
    gen.dns.add_cname("xmr.honker.info", "pool.minexmr.com",
                      valid_from=campaign.start)
    gen.dns.add_cname("x.alibuf.com", "xmr.crypto-pool.fr",
                      valid_from=campaign.start,
                      valid_to=datetime.date(2018, 4, 5))
    gen.dns.add_cname("x.alibuf.com", "pool.minexmr.com",
                      valid_from=datetime.date(2018, 4, 6))
    campaign.cname_domains = ["xt.freebuf.info", "x.alibuf.com",
                              "xmr.honker.info"]
    campaign.hosting_urls = [
        "http://122.114.99.123/load/fb.exe",
        "http://xt.freebuf.info/dl/sync.exe",
    ]
    gen.ips.pin("host:freebuf", "122.114.99.123")
    gen.dns.add_a("xt.freebuf.info", "122.114.99.123",
                  valid_from=campaign.start)

    wallets = campaign.identifiers

    def wallet_for_day(day: Date) -> str:
        # early wallets 0-4 rotate yearly; wallets 5 and 6 carry the
        # post-April-2018 minexmr phase (these two get banned).
        if day < datetime.date(2018, 4, 6):
            return wallets[min(4, (day.year - 2016))]
        if day < datetime.date(2018, 7, 15):
            return wallets[5]
        return wallets[6]

    _drive_phases(gen, campaign, _FREEBUF_PHASES, _FREEBUF_TARGET_XMR,
                  wallet_for_day, bot_ips=8099)
    return campaign


_USA138_PHASES = [
    (datetime.date(2016, 9, 1), datetime.date(2018, 4, 6),
     {"crypto-pool": 0.85, "minexmr": 0.15}),
    (datetime.date(2018, 4, 6), datetime.date(2018, 10, 18),
     {"minexmr": 1.0}),
    (datetime.date(2018, 10, 18), datetime.date(2019, 4, 30),
     {"crypto-pool": 1.0}),
]


def build_usa138_campaign(gen: "EcosystemGenerator") -> GroundTruthCampaign:
    """Construct and replay the USA-138 campaign."""
    campaign = GroundTruthCampaign(
        campaign_id=gen._next_campaign_id(),
        actor_id=gen._campaign_counter,
        identifier_kind="wallet",
        coin="XMR",
        label="USA-138",
        band=2,
        fixed_sample_count=118,   # + ancillaries => ~137 total
        custom_driven=True,
    )
    xmr_wallets = [gen.wallets.new_address("XMR") for _ in range(3)]
    etn_wallet = gen.wallets.new_address("ETN")
    campaign.identifiers = xmr_wallets + [etn_wallet]
    campaign.start = _USA138_PHASES[0][0]
    campaign.end = _USA138_PHASES[-1][1]
    campaign.updates_after_forks = True
    campaign.target_xmr = _USA138_TARGET_XMR
    campaign.pools = ["crypto-pool", "minexmr", "etn-pool"]
    campaign.uses_cname = True
    campaign.uses_obfuscation = True   # 43 UPX-packed samples
    campaign.packer = "UPX"
    gen.dns.add_cname("xmr.usa-138.com", "pool.minexmr.com",
                      valid_from=campaign.start)
    gen.dns.add_cname("pool.4i7i.com", "xmr.crypto-pool.fr",
                      valid_from=campaign.start)
    # etn.4i7i.com fronts an Electroneum pool but left no passive DNS.
    campaign.cname_domains = ["xmr.usa-138.com", "pool.4i7i.com",
                              "etn.4i7i.com"]
    campaign.hosting_urls = [
        "http://221.9.251.236/load/11.exe",
        "http://4i7i.com/11.exe",
    ]
    gen.ips.pin("host:usa138", "221.9.251.236")
    gen.dns.add_a("4i7i.com", "221.9.251.236", valid_from=campaign.start)

    def wallet_for_day(day: Date) -> str:
        if day < datetime.date(2018, 4, 6):
            return xmr_wallets[0]
        if day < datetime.date(2018, 10, 18):
            return xmr_wallets[1]    # 49e9B8H...-style post-fork wallet
        return xmr_wallets[2]

    _drive_phases(gen, campaign, _USA138_PHASES, _USA138_TARGET_XMR,
                  wallet_for_day, bot_ips=13000, post_ban_throttle=0.5)
    # The Electroneum side: worth ~5 USD total.
    etn_pool = gen.pools.get("etn-pool")
    account = etn_pool._account(etn_wallet)
    account.total_paid += 314.18
    account.payments.append((datetime.date(2018, 2, 1), 314.18))
    account.last_share = datetime.date(2018, 6, 1)
    return campaign
