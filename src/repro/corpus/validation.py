"""World-consistency validation.

A generated :class:`~repro.corpus.model.SyntheticWorld` must satisfy a
set of structural invariants for the measurement pipeline's results to
be meaningful (unique hashes, VT coverage, ground-truth/sample linkage,
payment windows, DNS coverage of referenced pool domains).  The
validator checks all of them and returns human-readable violations; the
generator's own tests call it, and downstream users can run it on
custom scenarios before trusting their measurements.
"""

import datetime
from dataclasses import dataclass, field
from typing import List

from repro.corpus.model import SyntheticWorld

_PAYMENT_WINDOW = (datetime.date(2010, 1, 1), datetime.date(2019, 6, 1))


__all__ = [
    "ValidationReport",
    "validate_world",
]


@dataclass
class ValidationReport:
    """Outcome of validating one world."""

    issues: List[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, issue: str) -> None:
        """Record one violation."""
        self.issues.append(issue)


def validate_world(world: SyntheticWorld) -> ValidationReport:
    """Run every invariant check; returns the collected violations."""
    report = ValidationReport()
    _check_unique_hashes(world, report)
    _check_vt_coverage(world, report)
    _check_ground_truth_links(world, report)
    _check_campaign_windows(world, report)
    _check_payments(world, report)
    _check_pool_dns(world, report)
    _check_donation_whitelist(world, report)
    return report


def _check_unique_hashes(world, report: ValidationReport) -> None:
    report.checks_run += 1
    seen = set()
    for sample in world.samples:
        if sample.sha256 in seen:
            report.add(f"duplicate sample hash: {sample.sha256[:12]}")
        seen.add(sample.sha256)


def _check_vt_coverage(world, report: ValidationReport) -> None:
    report.checks_run += 1
    for sample in world.samples:
        if world.vt.get_report(sample.sha256) is None:
            report.add(f"sample without VT report: {sample.sha256[:12]}")
            break  # one example suffices


def _check_ground_truth_links(world, report: ValidationReport) -> None:
    report.checks_run += 1
    known_ids = {c.campaign_id for c in world.ground_truth}
    for sample in world.samples:
        if (sample.true_campaign_id is not None
                and sample.true_campaign_id not in known_ids):
            report.add(
                f"sample {sample.sha256[:12]} references unknown "
                f"campaign {sample.true_campaign_id}")
    for campaign in world.ground_truth:
        for sha in campaign.sample_hashes:
            if world.sample_by_hash(sha) is None:
                report.add(
                    f"campaign {campaign.campaign_id} lists missing "
                    f"sample {sha[:12]}")


def _check_campaign_windows(world, report: ValidationReport) -> None:
    report.checks_run += 1
    for campaign in world.ground_truth:
        if campaign.start and campaign.end and campaign.end < campaign.start:
            report.add(
                f"campaign {campaign.campaign_id} ends before it starts")
        if campaign.coin == "XMR" and campaign.start:
            if campaign.start < datetime.date(2014, 4, 18):
                report.add(
                    f"XMR campaign {campaign.campaign_id} predates the "
                    "Monero launch")


def _check_payments(world, report: ValidationReport) -> None:
    report.checks_run += 1
    low, high = _PAYMENT_WINDOW
    for pool in world.pool_directory.pools():
        for wallet in pool.known_wallets():
            account = pool._account(wallet)
            for when, amount in account.payments:
                if amount <= 0:
                    report.add(
                        f"non-positive payment at {pool.config.name}")
                    return
                if not low <= when <= high:
                    report.add(
                        f"payment outside the simulation window at "
                        f"{pool.config.name}: {when}")
                    return


def _check_pool_dns(world, report: ValidationReport) -> None:
    report.checks_run += 1
    probe = datetime.date(2018, 6, 1)
    for pool in world.pool_directory.pools():
        for domain in pool.config.domains:
            if not world.resolver.resolve(domain, probe).resolved:
                report.add(f"pool domain without A record: {domain}")


def _check_donation_whitelist(world, report: ValidationReport) -> None:
    report.checks_run += 1
    catalog_wallets = world.stock_catalog.donation_wallets()
    if not catalog_wallets <= world.osint.donation_wallets:
        report.add("donation whitelist misses catalog wallets")
    # no ground-truth campaign may own a donation wallet
    for campaign in world.ground_truth:
        overlap = set(campaign.identifiers) & catalog_wallets
        if overlap:
            report.add(
                f"campaign {campaign.campaign_id} owns donation "
                f"wallet(s): {sorted(overlap)[0][:12]}")
