"""Mining driver: turns campaign schedules into pool-side ledgers.

For every wallet campaign the driver computes a constant hashrate that
lands the campaign's lifetime earnings on its sampled target, then
replays day-by-day mining against the pool simulators (with a stride to
keep large scenarios fast).  Pool fees, PoW-fork die-offs (campaign end
dates already reflect failed updates), payout thresholds and bans all
apply, so the payment ledgers the profit analysis later scrapes are
internally consistent.
"""

from typing import TYPE_CHECKING, Dict, List

from repro.chain.emission import MONERO_EMISSION, network_hashrate_hs
from repro.common.simtime import Date, date_range

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.corpus.generator import EcosystemGenerator
    from repro.corpus.model import GroundTruthCampaign

#: distinct infected machines per H/s (CryptoNight CPU bots ~100 H/s).
_HASHRATE_PER_BOT = 100.0

#: primary pool takes this share of the campaign's hashrate; the rest is
#: spread evenly over secondary pools (Fig. 5 behaviour).
_PRIMARY_POOL_SHARE = 0.6


class MiningDriver:
    """Replays all campaigns' mining activity against the pools."""

    def __init__(self, generator: "EcosystemGenerator") -> None:
        self._gen = generator
        self._stride = max(1, generator.config.mining_stride_days)

    def run(self) -> None:
        """Replay every campaign's mining against the pool simulators."""
        for campaign in self._gen.campaigns:
            if campaign.custom_driven:
                continue
            if campaign.coin == "XMR" and campaign.target_xmr > 0:
                self._drive_xmr(campaign)
            elif campaign.coin == "BTC":
                self._drive_btc(campaign)
            elif campaign.coin == "ETN" and campaign.pools:
                self._drive_etn(campaign)

    # -- XMR ----------------------------------------------------------------

    def _pool_weights(self, campaign: "GroundTruthCampaign") -> Dict[str, float]:
        pools = campaign.pools
        if not pools:
            return {}
        if len(pools) == 1:
            return {pools[0]: 1.0}
        secondary = (1.0 - _PRIMARY_POOL_SHARE) / (len(pools) - 1)
        weights = {name: secondary for name in pools[1:]}
        weights[pools[0]] = _PRIMARY_POOL_SHARE
        return weights

    def _active_days(self, campaign: "GroundTruthCampaign") -> List[Date]:
        if campaign.start is None or campaign.end is None:
            return []
        return list(date_range(campaign.start, campaign.end, self._stride))

    def _drive_xmr(self, campaign: "GroundTruthCampaign") -> None:
        days = self._active_days(campaign)
        weights = self._pool_weights(campaign)
        if not days or not weights:
            return
        # The campaign holds a constant *share* of the network hashrate
        # (a botnet that grows with the ecosystem), so XMR accrues
        # roughly uniformly across its lifetime.  Expected XMR per unit
        # of network share over the campaign:
        factor = 0.0
        for day in days:
            emission = MONERO_EMISSION.daily_emission(day)
            for name, weight in weights.items():
                fee = self._gen.pools.get(name).config.fee
                factor += emission * weight * (1 - fee) * self._stride
        if factor <= 0:
            return
        share = campaign.target_xmr / factor
        peak_hashrate = share * network_hashrate_hs(days[-1])
        campaign.bot_ips = max(1, int(peak_hashrate / _HASHRATE_PER_BOT))
        visible_ips = 1 if campaign.uses_proxy else campaign.bot_ips
        # wallets rotate: each wallet owns a contiguous slice of days
        wallets = campaign.identifiers or ["?"]
        slices = self._wallet_slices(len(days), len(wallets))
        earned = 0.0
        for wallet_idx, (lo, hi) in enumerate(slices):
            wallet = wallets[wallet_idx]
            for day in days[lo:hi]:
                hashrate = share * network_hashrate_hs(day)
                for name, weight in weights.items():
                    pool = self._gen.pools.get(name)
                    credited = pool.credit_mining_day(
                        wallet, day, hashrate * weight * self._stride,
                        src_ips=min(visible_ips, 400),
                    )
                    earned += credited
        campaign.actual_xmr = earned

    @staticmethod
    def _wallet_slices(n_days: int, n_wallets: int) -> List:
        """Split day indices into contiguous per-wallet slices."""
        n_wallets = max(1, min(n_wallets, n_days)) if n_days else 1
        if n_days == 0:
            return []
        base = n_days // n_wallets
        slices = []
        start = 0
        for i in range(n_wallets):
            extra = 1 if i < n_days % n_wallets else 0
            end = start + base + extra
            slices.append((start, end))
            start = end
        return slices

    # -- BTC ----------------------------------------------------------------

    def _drive_btc(self, campaign: "GroundTruthCampaign") -> None:
        """Bitcoin campaigns: negligible earnings (§IV-B: <5K USD total)."""
        if not campaign.pools or campaign.start is None:
            return
        rng = self._gen.rng.substream(f"btc:{campaign.campaign_id}")
        pool = self._gen.pools.get(campaign.pools[0])
        for wallet in campaign.identifiers:
            amount = rng.uniform(0.00005, 0.004)  # BTC: dust-level totals
            account = pool._account(wallet)
            account.total_paid += amount
            account.payments.append((campaign.start, amount))
            account.last_share = campaign.end or campaign.start
        campaign.actual_xmr = 0.0

    # -- ETN ----------------------------------------------------------------

    def _drive_etn(self, campaign: "GroundTruthCampaign") -> None:
        """Electroneum: tiny earnings (USA-138's wallet made ~5 USD)."""
        if campaign.start is None:
            return
        rng = self._gen.rng.substream(f"etn:{campaign.campaign_id}")
        pool = self._gen.pools.get("etn-pool")
        account = pool._account(campaign.identifiers[0])
        amount = rng.uniform(50.0, 400.0)  # ETN, worth almost nothing
        account.total_paid += amount
        account.payments.append((campaign.start, amount))
        account.last_share = campaign.end or campaign.start
