"""Named scenario presets.

``ScenarioConfig`` has enough knobs that common set-ups deserve names.
Each preset is a fresh config instance (mutating one never affects the
registry).
"""

from typing import Callable, Dict, List

from repro.corpus.model import ScenarioConfig

_PRESETS: Dict[str, Callable[[], ScenarioConfig]] = {
    # fast enough for unit tests and notebooks
    "smoke": lambda: ScenarioConfig(seed=2019, scale=0.004,
                                    include_junk=False),
    # the shared test-suite world
    "test": lambda: ScenarioConfig(seed=1, scale=0.01),
    # the benchmark world: bands populated, minutes not hours
    "bench": lambda: ScenarioConfig(seed=2019, scale=0.04),
    # population study without the hand-built §V fixtures
    "population-only": lambda: ScenarioConfig(
        seed=2019, scale=0.04, include_case_studies=False),
    # stress the sanity checks: twice the junk
    "noisy-feed": lambda: ScenarioConfig(seed=2019, scale=0.02,
                                         junk_ratio=2.4),
    # approaching the paper's population (minutes of CPU, ~1.5M samples
    # would need scale=1.0; this is the practical large setting)
    "large": lambda: ScenarioConfig(seed=2019, scale=0.2,
                                    mining_stride_days=10),
}


def scenario(name: str) -> ScenarioConfig:
    """Fresh config for a named preset; raises KeyError with the list."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(_PRESETS)}"
        ) from None
    return factory()


def available_scenarios() -> List[str]:
    """Names of every registered scenario preset."""
    return sorted(_PRESETS)
