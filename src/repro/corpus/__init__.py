"""Synthetic malware-ecosystem generator.

This is the substitute for the paper's VirusTotal / Palo Alto corpora
(4.5M samples, 1.2M crypto-mining binaries): a generative model of
actors running mining campaigns, calibrated to every distribution the
paper reports — currencies per campaign (Table IV), earnings bands and
their infrastructure mix (Table XI), pool popularity (Table VII),
hosting domains (Table VI), packers (Table X), samples-per-campaign
skew (Fig. 4) and the PoW-fork die-offs (§VI).

Because the generator also emits *ground truth* (actor -> campaign ->
sample), the reproduction can score the paper's aggregation heuristics,
something the original authors could only do by manual inspection.
"""

from repro.corpus.model import (
    GroundTruthCampaign,
    SampleRecord,
    ScenarioConfig,
    SyntheticWorld,
)
from repro.corpus.generator import EcosystemGenerator, generate_world
from repro.corpus.case_studies import (
    build_freebuf_campaign,
    build_usa138_campaign,
)

__all__ = [
    "GroundTruthCampaign",
    "SampleRecord",
    "ScenarioConfig",
    "SyntheticWorld",
    "EcosystemGenerator",
    "generate_world",
    "build_freebuf_campaign",
    "build_usa138_campaign",
]
