"""The ecosystem generator: actors, campaigns, samples, infrastructure.

Generation proceeds world-first: pool DNS, stock-tool catalog and OSINT
feeds are materialised, then campaigns are drawn per identifier type
with the calibrated distributions, then each campaign emits binaries
(with behaviour scripts, droppers, hosting URLs, packers), and finally
the mining driver replays every campaign's hashrate against the pool
simulators so that pool-side payment ledgers exist for profit analysis.
"""

import datetime
import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.binfmt.codegen import pseudo_code
from repro.binfmt.format import ExecutableKind, build_binary
from repro.binfmt.packers import CUSTOM_CRYPTER, PACKERS, pack
from repro.common.rng import DeterministicRNG
from repro.common.simtime import (
    SIM_END,
    Date,
    add_days,
    clamp,
    pow_era,
)
from repro.corpus import distributions as dist
from repro.corpus.driver import MiningDriver
from repro.corpus.model import (
    GroundTruthCampaign,
    SampleChunk,
    SampleRecord,
    ScenarioConfig,
    SyntheticWorld,
)
from repro.forums.corpus import generate_forum_corpus
from repro.intel.ha import HaService
from repro.intel.vt import AV_VENDORS, AvReport, VtService
from repro.netsim.dns import DnsZone, PassiveDns, Resolver
from repro.netsim.ipspace import IpAllocator
from repro.osint.feeds import OsintFeeds
from repro.osint.stock_tools import StockToolCatalog
from repro.pools.directory import PoolDirectory, default_directory
from repro.sandbox.behavior import (
    BehaviorScript,
    CheckSandbox,
    DnsQuery,
    DropFile,
    HttpGet,
    SpawnProcess,
    StratumSession,
)
from repro.sandbox.emulator import Sandbox, SandboxEnvironment
from repro.wallets.addresses import WalletFactory

_XMR_END = datetime.date(2019, 4, 30)

#: typical per-bot CryptoNight CPU hashrate (H/s) used to convert a
#: campaign's hashrate into "distinct infected IPs" seen by pools.
_HASHRATE_PER_BOT = 100.0

# Invariant per-sample distribution setup, hoisted out of the emission
# loops: re-deriving these name/weight lists on every draw dominated the
# generator profile without changing a single draw (the RNG consumes
# values, not the lists they come from).
_PPI_NAMES = tuple(n for n, _ in dist.PPI_WEIGHTS)
_PPI_P = tuple(w for _, w in dist.PPI_WEIGHTS)
_STOCK_TOOL_NAMES = tuple(n for n, _ in dist.STOCK_TOOL_WEIGHTS)
_STOCK_TOOL_P = tuple(w for _, w in dist.STOCK_TOOL_WEIGHTS)
_PACKER_NAMES = tuple(n for n, _ in dist.PACKER_WEIGHTS)
_PACKER_P = tuple(w for _, w in dist.PACKER_WEIGHTS)
_WALLET_COUNTS = tuple(c for c, _ in dist.WALLETS_PER_CAMPAIGN_P)
_WALLET_COUNT_P = tuple(w for _, w in dist.WALLETS_PER_CAMPAIGN_P)
_XMR_POOL_NAMES = tuple(n for n, _ in dist.XMR_POOL_WEIGHTS)
_XMR_POOL_P = tuple(w for _, w in dist.XMR_POOL_WEIGHTS)
_EMAIL_POOL_NAMES = tuple(n for n, _ in dist.EMAIL_POOL_WEIGHTS)
_EMAIL_POOL_P = tuple(w for _, w in dist.EMAIL_POOL_WEIGHTS)
_HOSTING_NAMES = tuple(d for d, _, _ in dist.HOSTING_DOMAINS)
_HOSTING_P = tuple(w for _, w, _ in dist.HOSTING_DOMAINS)
_HOSTING_PUBLIC = {d: p for d, _, p in dist.HOSTING_DOMAINS}
_AV_VENDOR_LIST = list(AV_VENDORS)
_MINER_PORTS = (3333, 4444, 5555, 7777, 8080)
_BTC_POOLS = ("50btc", "slushpool", "btcdig", "f2pool", "suprnova")


class EcosystemGenerator:
    """Deterministic generator for a full synthetic ecosystem."""

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config or ScenarioConfig()
        self.rng = DeterministicRNG(self.config.seed)
        self.wallets = WalletFactory(self.rng.substream("actor-wallets"))
        self.ips = IpAllocator(self.rng.substream("ips"))
        self.dns = DnsZone()
        self.resolver = Resolver(self.dns)
        self.passive_dns = PassiveDns(self.dns)
        self.pools: PoolDirectory = default_directory()
        self.stock = StockToolCatalog(self.rng.substream("tools"))
        self.osint = OsintFeeds()
        self.vt = VtService()
        self.ha = HaService()
        self.samples: List[SampleRecord] = []
        self.campaigns: List[GroundTruthCampaign] = []
        self._campaign_counter = 0
        self._sample_counter = 0
        self._tool_drop_hashes: Dict[str, str] = {}  # tool sha -> emitted
        #: every sha256 ever registered; replaces the per-emission scan
        #: over self.samples (which streaming mode drains anyway)
        self._seen_hashes: set = set()
        self._parent_links: Dict[str, List[str]] = {}
        self._hosting_owner: Dict[str, int] = {}
        self._skeleton_built = False

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def generate(self) -> SyntheticWorld:
        """Build the full synthetic world (campaigns, samples, intel)."""
        self._setup_world()
        self._generate_wallet_campaigns()
        self._generate_email_campaigns()
        self._generate_unknown_campaigns()
        if self.config.include_case_studies:
            self._add_case_studies()
        for campaign in self.campaigns:
            self._emit_campaign_samples(campaign)
        self._add_pre2014_reuse_fixture()
        self._assign_known_operations()
        MiningDriver(self).run()
        if self.config.include_junk:
            self._emit_junk()
        self._publish_intel()
        world = SyntheticWorld(
            config=self.config,
            samples=self.samples,
            vt=self.vt,
            ha=self.ha,
            dns_zone=self.dns,
            resolver=self.resolver,
            passive_dns=self.passive_dns,
            pool_directory=self.pools,
            osint=self.osint,
            stock_catalog=self.stock,
            ground_truth=self.campaigns,
            forum_corpus=generate_forum_corpus(
                self.rng.substream("forums"),
                scale=max(0.25, self.config.scale * 5),
            ),
        )
        return world

    # ------------------------------------------------------------------
    # streaming mode
    # ------------------------------------------------------------------

    def build_skeleton(self) -> None:
        """Campaign-level world state only — no sample bodies.

        Builds everything :meth:`stream_chunks` needs up front: DNS,
        catalogs, every campaign's ground truth, the case studies, and
        the pool-side payment ledgers (the mining driver reads only
        campaign fields and its own keyed substreams, so replaying it
        before emission draws exactly what the batch path draws after).
        Idempotent; an instance supports either :meth:`generate` or the
        streaming path, not both.
        """
        if self._skeleton_built:
            return
        self._skeleton_built = True
        self._setup_world()
        self._generate_wallet_campaigns()
        self._generate_email_campaigns()
        self._generate_unknown_campaigns()
        if self.config.include_case_studies:
            self._add_case_studies()
        MiningDriver(self).run()

    def stream_chunks(self, chunk_samples: int = 4096,
                      keep_sample_hashes: bool = True,
                      ) -> Iterator[SampleChunk]:
        """Yield the batch world in bounded chunks, never holding it.

        Emits campaigns in batch order (identical draw sequence), but
        builds each sample's VT/HA intel lazily at yield time from its
        per-sample ``intel:{sha}`` substream, so the union of all
        chunks equals :meth:`generate`'s world as sha-keyed maps.  The
        first three XMR campaigns that emit miners are withheld until
        the pre-2014 reuse fixture has added its parent links to them,
        preserving report equality; known-operation hash IoCs are
        published before the owning campaign's samples are yielded,
        exactly as a batch consumer would observe them.

        ``keep_sample_hashes=False`` drops per-campaign sample-hash
        ground truth once a campaign has been emitted (fixture targets
        and operation campaigns excepted), bounding skeleton memory by
        campaign count rather than sample count.
        """
        self.build_skeleton()
        op_for_campaign: Dict[int, object] = {}
        for operation, campaign in self._known_operation_pairs():
            campaign.known_operation = operation.name
            operation.wallets.update(campaign.identifiers[:2])
            operation.domains.update(campaign.cname_domains[:1])
            op_for_campaign[campaign.campaign_id] = operation
        whitelist = self.stock.whitelist_hashes()
        sandbox = Sandbox(self.resolver, SandboxEnvironment(
            analysis_date=datetime.date(2018, 9, 1)))

        def build_chunk(samples: List[SampleRecord]) -> SampleChunk:
            reports: Dict[str, AvReport] = {}
            ha_reports: Dict[str, object] = {}
            for sample in samples:
                rng = self.rng.substream(f"intel:{sample.sha256}")
                reports[sample.sha256] = self._make_vt_report(
                    rng, sample, whitelist)
                self._parent_links.pop(sample.sha256, None)
                if sample.kind == "miner" and rng.bernoulli(0.03):
                    ha_reports[sample.sha256] = sandbox.run(
                        sample.sha256, sample.behavior)
            return SampleChunk(samples=samples, reports=reports,
                               ha_reports=ha_reports)

        fixture_pool: List[GroundTruthCampaign] = []
        fixture_miners: Dict[int, List[str]] = {}
        held: List[List[SampleRecord]] = []
        pending: List[SampleRecord] = []

        for campaign in self.campaigns:
            self._emit_campaign_samples(campaign)
            emitted, self.samples = self.samples, []
            withheld = (len(fixture_pool) < 3 and campaign.coin == "XMR"
                        and any(s.kind == "miner" for s in emitted))
            if withheld:
                # candidate fixture target: its miners may gain parent
                # links (and its op-IoC slice may grow) once the fixture
                # exists, so emission and IoC publication both wait.
                fixture_pool.append(campaign)
                fixture_miners[campaign.campaign_id] = [
                    s.sha256 for s in emitted if s.kind == "miner"]
                held.append(emitted)
                continue
            operation = op_for_campaign.get(campaign.campaign_id)
            if operation is not None:
                self._publish_operation_hashes(operation, campaign)
            elif not keep_sample_hashes:
                campaign.sample_hashes = []
            pending.extend(emitted)
            while len(pending) >= chunk_samples:
                yield build_chunk(pending[:chunk_samples])
                del pending[:chunk_samples]

        fixture = self._emit_pre2014_fixture(fixture_pool, fixture_miners)
        self.samples = []
        for campaign, emitted in zip(fixture_pool, held):
            operation = op_for_campaign.get(campaign.campaign_id)
            if operation is not None:
                self._publish_operation_hashes(operation, campaign)
            pending.extend(emitted)
        pending.extend(fixture)
        while len(pending) >= chunk_samples:
            yield build_chunk(pending[:chunk_samples])
            del pending[:chunk_samples]

        if self.config.include_junk:
            for record in self._iter_junk():
                pending.append(record)
                self.samples.clear()
                if len(pending) >= chunk_samples:
                    yield build_chunk(pending[:chunk_samples])
                    del pending[:chunk_samples]
        if pending:
            yield build_chunk(pending)

    # ------------------------------------------------------------------
    # world setup
    # ------------------------------------------------------------------

    def _setup_world(self) -> None:
        """Give every known pool stable A records."""
        for pool in self.pools.pools():
            for domain in pool.config.domains:
                self.dns.add_a(domain, self.ips.allocate(f"pool:{pool.config.name}"))
        for wallet in self.stock.donation_wallets():
            self.osint.whitelist_donation_wallet(wallet)

    def _next_campaign_id(self) -> int:
        self._campaign_counter += 1
        return self._campaign_counter

    # ------------------------------------------------------------------
    # campaign synthesis
    # ------------------------------------------------------------------

    def _scaled(self, paper_count: int, minimum: int = 1) -> int:
        return max(minimum, round(paper_count * self.config.scale))

    def _generate_wallet_campaigns(self) -> None:
        for ticker, paper_count in dist.CAMPAIGNS_PER_CURRENCY.items():
            count = self._scaled(paper_count, minimum=1 if paper_count < 50 else 2)
            if ticker == "XMR":
                self._generate_xmr_campaigns(count)
            else:
                for _ in range(count):
                    self.campaigns.append(self._make_altcoin_campaign(ticker))

    def _generate_xmr_campaigns(self, count: int) -> None:
        """Allocate campaigns to earnings bands deterministically.

        Proportional allocation (largest-remainder) instead of sampling:
        at small scales a sampled composition of the heavy-tail bands
        would dominate total-earnings variance.
        """
        rng = self.rng.substream("xmr-campaigns")
        band_weights = [c for _, _, c in dist.XMR_BAND_COUNTS]
        total_weight = sum(band_weights)
        quotas = [count * w / total_weight for w in band_weights]
        counts = [int(q) for q in quotas]
        remainders = sorted(range(4), key=lambda b: quotas[b] - counts[b],
                            reverse=True)
        for band in remainders:
            if sum(counts) >= count:
                break
            counts[band] += 1
        # guarantee at least one campaign in each tail band when the
        # scenario is big enough to have a tail at all
        for band in (3, 2, 1):
            if counts[band] == 0 and counts[0] > 4:
                counts[band] += 1
                counts[0] -= 1
        for band in range(4):
            for _ in range(counts[band]):
                self.campaigns.append(self._make_xmr_campaign(rng, band))

    def _make_xmr_campaign(self, rng: DeterministicRNG,
                           band: int) -> GroundTruthCampaign:
        campaign = GroundTruthCampaign(
            campaign_id=self._next_campaign_id(),
            actor_id=self._campaign_counter,
            identifier_kind="wallet",
            coin="XMR",
            band=band,
        )
        # identifiers: mostly standard addresses; some operators use
        # subaddresses ('8...') to segment their botnets.  The variant
        # choice draws from its own substream so it cannot perturb the
        # campaign stream (stable stream splitting).
        n_wallets = self._sample_wallet_count(rng)
        sub_rng = self.rng.substream(f"subaddr:{campaign.campaign_id}")
        campaign.identifiers = [
            self.wallets.new_address(
                "XMR_SUB" if sub_rng.bernoulli(0.10) else "XMR")
            for _ in range(n_wallets)
        ]
        # activity period
        campaign.start, campaign.end, campaign.updates_after_forks = (
            self._sample_activity(rng, band)
        )
        # earnings target (log-uniform within band); a slice of campaigns
        # never shows up at transparent pools at all.
        low, high, _ = dist.XMR_BAND_COUNTS[band]
        low = max(low, 0.05)
        if rng.bernoulli(dist.XMR_NO_PAYMENT_FRACTION) and band == 0:
            campaign.target_xmr = 0.0
        else:
            campaign.target_xmr = rng.lognormal_median(
                dist.XMR_BAND_MEDIAN[band], 0.7)
            campaign.target_xmr = min(max(campaign.target_xmr, low),
                                      high * 0.999)
        # pools
        campaign.pools = self._sample_pools(rng, band)
        # infrastructure / stealth by band
        campaign.uses_ppi = rng.bernoulli(dist.BAND_FEATURES["ppi"][band])
        if campaign.uses_ppi:
            campaign.ppi_botnet = rng.choices(_PPI_NAMES,
                                              weights=_PPI_P)[0]
        campaign.uses_stock_tool = rng.bernoulli(
            dist.BAND_FEATURES["stock_tool"][band])
        if campaign.uses_stock_tool:
            campaign.stock_framework = rng.choices(
                _STOCK_TOOL_NAMES, weights=_STOCK_TOOL_P)[0]
        campaign.uses_obfuscation = rng.bernoulli(
            dist.BAND_FEATURES["obfuscation"][band])
        if campaign.uses_obfuscation or rng.bernoulli(0.60):
            campaign.packer = rng.choices(_PACKER_NAMES,
                                          weights=_PACKER_P)[0]
        campaign.uses_cname = rng.bernoulli(dist.BAND_FEATURES["cname"][band])
        if campaign.uses_cname:
            self._setup_cname(rng, campaign)
        campaign.uses_proxy = rng.bernoulli(dist.BAND_FEATURES["proxy"][band])
        if campaign.uses_proxy:
            campaign.proxy_host = self.ips.allocate(
                f"proxy:{campaign.campaign_id}")
        return campaign

    def _sample_wallet_count(self, rng: DeterministicRNG) -> int:
        return rng.choices(_WALLET_COUNTS, weights=_WALLET_COUNT_P)[0]

    def _sample_activity(self, rng: DeterministicRNG,
                         band: int) -> Tuple[Date, Date, bool]:
        year_dist = dist.BAND_START_YEAR[band]
        years = list(year_dist)
        start_year = rng.choices(years,
                                 weights=[year_dist[y] for y in years])[0]
        start = datetime.date(start_year, rng.randint(1, 12),
                              rng.randint(1, 28))
        # Monero launched 2014-04-18; no campaign can pre-date the coin.
        start = clamp(start, datetime.date(2014, 5, 1), _XMR_END)
        # natural lifetime grows with band (Table XI "Years" rows)
        median_days = [240, 480, 700, 1500][band]
        lifetime = int(rng.lognormal_median(median_days, 0.5))
        natural_end = clamp(add_days(start, max(lifetime, 30)),
                            start, _XMR_END)
        updates = rng.bernoulli(dist.BAND_FORK_UPDATE_PROB[band])
        end = natural_end
        if not updates:
            # die at the first PoW fork inside the activity window
            from repro.common.simtime import POW_FORK_DATES
            for fork in POW_FORK_DATES:
                if start < fork < natural_end:
                    end = fork
                    break
        return start, end, updates

    def _sample_pools(self, rng: DeterministicRNG, band: int) -> List[str]:
        names = _XMR_POOL_NAMES
        weights = _XMR_POOL_P
        if rng.bernoulli(dist.BAND_SINGLE_POOL_PROB[band]):
            n_pools = 1
        else:
            low, high = dist.BAND_POOL_COUNT[band]
            n_pools = rng.randint(max(2, low), max(2, high))
        chosen: List[str] = []
        while len(chosen) < min(n_pools, len(names)):
            pick = rng.choices(names, weights=weights)[0]
            if pick not in chosen:
                chosen.append(pick)
        return chosen

    def _setup_cname(self, rng: DeterministicRNG,
                     campaign: GroundTruthCampaign) -> None:
        """Register domain aliases hiding the campaign's pools."""
        actor_domain = f"c{campaign.campaign_id}-{rng.hexbytes(3)}.info"
        n_aliases = 1 if rng.bernoulli(0.8) else 2
        for i in range(n_aliases):
            alias = f"xmr{i}.{actor_domain}" if i else f"x.{actor_domain}"
            target_pool = self.pools.get(campaign.pools[0])
            self.dns.add_cname(alias, target_pool.config.domains[0],
                               valid_from=campaign.start or SIM_END)
            campaign.cname_domains.append(alias)

    def _make_altcoin_campaign(self, ticker: str) -> GroundTruthCampaign:
        rng = self.rng.substream(f"alt:{ticker}:{self._campaign_counter}")
        campaign = GroundTruthCampaign(
            campaign_id=self._next_campaign_id(),
            actor_id=self._campaign_counter,
            identifier_kind="wallet",
            coin=ticker,
        )
        campaign.identifiers = [
            self.wallets.new_address(ticker)
            for _ in range(self._sample_wallet_count(rng))
        ]
        if ticker == "BTC":
            year_weights = dist.BTC_SAMPLES_PER_YEAR
            years = list(year_weights)
            year = rng.choices(years,
                               weights=[year_weights[y] for y in years])[0]
            campaign.pools = [rng.choice(_BTC_POOLS)]
        else:
            year = rng.choices([2016, 2017, 2018, 2019],
                               weights=[0.1, 0.5, 0.35, 0.05])[0]
            campaign.pools = ["etn-pool"] if ticker == "ETN" else []
        start = datetime.date(year, rng.randint(1, 12), rng.randint(1, 28))
        campaign.start = clamp(start)
        campaign.end = clamp(add_days(campaign.start,
                                      rng.randint(40, 500)))
        if rng.bernoulli(0.5):
            campaign.packer = self._pick_packer(rng)
        return campaign

    @staticmethod
    def _pick_packer(rng: DeterministicRNG) -> str:
        return rng.choices(_PACKER_NAMES, weights=_PACKER_P)[0]

    def _generate_email_campaigns(self) -> None:
        rng = self.rng.substream("email-campaigns")
        count = self._scaled(dist.EMAIL_CAMPAIGNS, minimum=5)
        pool_names = _EMAIL_POOL_NAMES
        pool_weights = _EMAIL_POOL_P
        for _ in range(count):
            campaign = GroundTruthCampaign(
                campaign_id=self._next_campaign_id(),
                actor_id=self._campaign_counter,
                identifier_kind="email",
                coin=None,
            )
            campaign.identifiers = [self.wallets.new_email()]
            campaign.pools = [rng.choices(pool_names,
                                          weights=pool_weights)[0]]
            if rng.bernoulli(0.55):
                campaign.packer = self._pick_packer(rng)
            year = rng.choices([2014, 2015, 2016, 2017, 2018],
                               weights=[0.05, 0.1, 0.2, 0.45, 0.2])[0]
            campaign.start = datetime.date(year, rng.randint(1, 12),
                                           rng.randint(1, 28))
            campaign.end = clamp(add_days(campaign.start,
                                          rng.randint(30, 400)))
            self.campaigns.append(campaign)

    def _generate_unknown_campaigns(self) -> None:
        rng = self.rng.substream("unknown-campaigns")
        count = self._scaled(dist.UNKNOWN_CAMPAIGNS, minimum=2)
        for _ in range(count):
            campaign = GroundTruthCampaign(
                campaign_id=self._next_campaign_id(),
                actor_id=self._campaign_counter,
                identifier_kind="unknown",
                coin=None,
            )
            campaign.identifiers = [self.wallets.new_username()]
            # Private/unknown pool: a domain the directory does not know.
            private = f"pool.c{campaign.campaign_id}-priv.xyz"
            self.dns.add_a(private, self.ips.allocate(f"priv:{private}"))
            campaign.pools = []
            campaign.hosting_urls = []
            campaign.cname_domains = [private]
            if rng.bernoulli(0.55):
                campaign.packer = self._pick_packer(rng)
            year = rng.choices([2016, 2017, 2018],
                               weights=[0.2, 0.5, 0.3])[0]
            campaign.start = datetime.date(year, rng.randint(1, 12),
                                           rng.randint(1, 28))
            campaign.end = clamp(add_days(campaign.start,
                                          rng.randint(30, 300)))
            self.campaigns.append(campaign)

    def _add_case_studies(self) -> None:
        from repro.corpus.case_studies import (
            build_freebuf_campaign,
            build_usa138_campaign,
        )
        self.campaigns.append(build_freebuf_campaign(self))
        self.campaigns.append(build_usa138_campaign(self))

    # ------------------------------------------------------------------
    # known operations / OSINT
    # ------------------------------------------------------------------

    def _known_operation_pairs(self) -> List[tuple]:
        """(operation, campaign) pairs: the largest non-case-study XMR
        campaigns become the six publicly reported operations.

        Selection reads only campaign-level fields, so streaming mode
        can pick the pairs before any sample exists; the hash-IoC slice
        is published separately once a campaign's samples are known.
        """
        candidates = sorted(
            (c for c in self.campaigns
             if c.coin == "XMR" and c.known_operation is None
             and c.label is None  # Freebuf/USA-138 are *unknown* (§V)
             and c.band is not None and c.band >= 1),
            key=lambda c: c.target_xmr, reverse=True,
        )
        return list(zip(self.osint.operations(), candidates))

    @staticmethod
    def _publish_operation_hashes(operation, campaign) -> None:
        """Publish a third of the campaign's samples as hash IoCs."""
        operation.sample_hashes.update(
            campaign.sample_hashes[: max(1, len(campaign.sample_hashes) // 3)]
        )

    def _assign_known_operations(self) -> None:
        """Tag the operation campaigns and publish their IoCs."""
        for operation, campaign in self._known_operation_pairs():
            campaign.known_operation = operation.name
            operation.wallets.update(campaign.identifiers[:2])
            self._publish_operation_hashes(operation, campaign)
            operation.domains.update(campaign.cname_domains[:1])

    # ------------------------------------------------------------------
    # sample emission
    # ------------------------------------------------------------------

    def _emit_campaign_samples(self, campaign: GroundTruthCampaign) -> None:
        rng = self.rng.substream(f"samples:{campaign.campaign_id}")
        if campaign.fixed_sample_count is not None:
            n_samples = campaign.fixed_sample_count
        else:
            n_samples = min(
                self.config.samples_cap,
                max(dist.SAMPLES_MIN,
                    int(rng.pareto(dist.SAMPLES_PARETO_ALPHA))),
            )
        if campaign.hosting_urls:
            hosting = campaign.hosting_urls
        else:
            hosting = self._campaign_hosting(rng, campaign)
        # dropper/ancillary budget for this campaign
        n_droppers = rng.poisson(n_samples * dist.ANCILLARY_RATIO)
        dropper_hashes: List[str] = []
        for _ in range(n_droppers):
            dropper_hashes.append(
                self._emit_dropper(rng, campaign, hosting))
        for i in range(n_samples):
            parent = (rng.choice(dropper_hashes)
                      if dropper_hashes and rng.bernoulli(0.5) else None)
            self._emit_miner_sample(rng, campaign, hosting, parent,
                                    sample_index=i)

    def _campaign_hosting(self, rng: DeterministicRNG,
                          campaign: GroundTruthCampaign) -> List[str]:
        """Pick hosting URLs for the campaign's binaries (Table VI).

        Public repos/CDNs are shared by many campaigns (unique paths per
        campaign); actor-owned domains belong to exactly one campaign —
        when a draw collides with a domain already owned by another
        campaign, the actor registers a fresh one.
        """
        names = _HOSTING_NAMES
        weights = _HOSTING_P
        public = _HOSTING_PUBLIC
        urls = []
        for _ in range(rng.randint(1, 3)):
            domain = rng.choices(names, weights=weights)[0]
            if public[domain]:
                path = f"/dl/{rng.hexbytes(5)}/miner{rng.randint(1,9)}.exe"
            else:
                owner = self._hosting_owner.setdefault(
                    domain, campaign.campaign_id)
                if owner != campaign.campaign_id:
                    domain = f"ld{campaign.campaign_id}-{rng.hexbytes(2)}.ru"
                    self._hosting_owner[domain] = campaign.campaign_id
                # actor-owned host: stable URL reused by the campaign
                path = f"/load/{campaign.campaign_id}.exe"
            urls.append(f"http://{domain}{path}")
        campaign.hosting_urls = urls
        return urls

    def _mk_hashes(self, raw: bytes) -> Tuple[str, str]:
        return (hashlib.sha256(raw).hexdigest(),
                hashlib.md5(raw).hexdigest())

    def _first_seen_in(self, rng: DeterministicRNG,
                       campaign: GroundTruthCampaign) -> Date:
        start = campaign.start or SIM_END
        end = campaign.end or SIM_END
        span = max(1, (end - start).days)
        return add_days(start, rng.randint(0, span - 1))

    def _mining_target(self, campaign: GroundTruthCampaign,
                       rng: DeterministicRNG,
                       sample_index: int = 0) -> Tuple[str, str, int]:
        """(host, wallet, port) a sample of this campaign mines against.

        The first len(identifiers) samples cycle through every wallet so
        each identifier is embedded in at least one binary (otherwise a
        wallet with pool payments could be invisible to extraction).
        """
        if sample_index < len(campaign.identifiers):
            wallet = campaign.identifiers[sample_index]
        else:
            wallet = rng.choice(campaign.identifiers)
        port = rng.choice(_MINER_PORTS)
        if campaign.uses_proxy and campaign.proxy_host:
            return campaign.proxy_host, wallet, port
        if campaign.uses_cname and campaign.cname_domains:
            return rng.choice(campaign.cname_domains), wallet, port
        if campaign.pools:
            pool = self.pools.get(rng.choice(campaign.pools))
            return pool.config.domains[0], wallet, port
        if campaign.cname_domains:  # unknown/private pool campaigns
            return campaign.cname_domains[0], wallet, port
        return "pool.unknown.example", wallet, port

    def _miner_cmdline(self, campaign: GroundTruthCampaign, host: str,
                       wallet: str, port: int) -> str:
        tool = campaign.stock_framework or "miner"
        return (f"{tool}.exe -o stratum+tcp://{host}:{port} "
                f"-u {wallet} -p x --donate-level 1")

    def _emit_miner_sample(self, rng: DeterministicRNG,
                           campaign: GroundTruthCampaign,
                           hosting: List[str],
                           parent: Optional[str],
                           sample_index: int = 0) -> str:
        host, wallet, port = self._mining_target(campaign, rng,
                                                 sample_index)
        cmdline = self._miner_cmdline(campaign, host, wallet, port)
        first_seen = self._first_seen_in(rng, campaign)
        behavior = BehaviorScript()
        if rng.bernoulli(0.08):
            behavior.append(CheckSandbox(detectability=rng.uniform(0.2, 0.7)))
        dropped_tool: Optional[str] = None
        if campaign.uses_stock_tool and campaign.stock_framework:
            dropped_tool = self._emit_tool_drop(rng, campaign, first_seen)
            behavior.append(HttpGet(rng.choice(hosting)))
            if dropped_tool:
                behavior.append(DropFile("miner64.exe", dropped_tool))
        behavior.append(DnsQuery(host) if any(c.isalpha() for c in host)
                        else DnsQuery(host))
        behavior.append(SpawnProcess(
            image=f"{campaign.stock_framework or 'svchost'}.exe",
            cmdline=cmdline))
        algo_era = pow_era(first_seen)
        behavior.append(StratumSession(
            host=host, port=port, login=wallet,
            agent=f"xmrig/{2 + algo_era}.{rng.randint(0,9)}.{rng.randint(0,9)}",
            algo=f"cn/{algo_era}" if algo_era < 3 else "cn/r",
        ))
        if rng.bernoulli(dist.DONATION_SLICE_PROB):
            donation = rng.choice(sorted(self.stock.donation_wallets()))
            behavior.append(StratumSession(
                host=host, port=port, login=donation, algo="cn/0"))
        # binary body: embed config only when not wrapped by a crypter
        config = {"url": f"stratum+tcp://{host}:{port}",
                  "user": wallet, "pass": "x"}
        code_rng = rng.substream(f"code:{self._sample_counter}")
        raw = build_binary(
            ExecutableKind.PE if rng.bernoulli(0.9) else ExecutableKind.ELF,
            code=pseudo_code(code_rng, rng.randint(1200, 4000)),
            strings=[cmdline, f"stratum+tcp://{host}:{port}"],
            config=config,
        )
        raw = self._maybe_pack(rng, campaign, raw)
        sha, md5 = self._mk_hashes(raw)
        itw = [rng.choice(hosting)] if hosting and rng.bernoulli(0.6) else []
        record = SampleRecord(
            sha256=sha, md5=md5, raw=raw, behavior=behavior,
            first_seen=first_seen,
            source=(chosen_sources := self._pick_sources(rng))[0],
            sources=chosen_sources,
            kind="miner",
            itw_urls=itw,
            true_campaign_id=campaign.campaign_id,
            true_wallets=[wallet],
        )
        if parent:
            record.itw_urls = record.itw_urls or []
        self._register_sample(record, campaign)
        if parent:
            self._parent_links.setdefault(sha, []).append(parent)
        return sha

    def _emit_dropper(self, rng: DeterministicRNG,
                      campaign: GroundTruthCampaign,
                      hosting: List[str]) -> str:
        """Ancillary dropper binary: downloads and runs miners."""
        url = rng.choice(hosting) if hosting else "http://example.com/x.exe"
        behavior = BehaviorScript()
        behavior.append(HttpGet(url))
        code_rng = rng.substream(f"dropcode:{self._sample_counter}")
        raw = build_binary(
            ExecutableKind.PE,
            code=pseudo_code(code_rng, rng.randint(800, 2000)),
            strings=[url, "cmd /c start miner64.exe"],
        )
        raw = self._maybe_pack(rng, campaign, raw)
        sha, md5 = self._mk_hashes(raw)
        record = SampleRecord(
            sha256=sha, md5=md5, raw=raw, behavior=behavior,
            first_seen=self._first_seen_in(rng, campaign),
            source=(chosen_sources := self._pick_sources(rng))[0],
            sources=chosen_sources,
            kind="ancillary",
            itw_urls=[url],
            true_campaign_id=campaign.campaign_id,
        )
        self._register_sample(record, campaign)
        return sha

    def _emit_tool_drop(self, rng: DeterministicRNG,
                        campaign: GroundTruthCampaign,
                        as_of: Date) -> Optional[str]:
        """The stock-tool binary a campaign drops (exact or forked)."""
        tool = self.stock.latest_version(campaign.stock_framework or "",
                                         as_of=as_of)
        if tool is None:
            return None
        key = f"{campaign.campaign_id}:{tool.sha256}"
        if key in self._tool_drop_hashes:
            return self._tool_drop_hashes[key]
        if rng.bernoulli(0.25):
            raw = self.stock.fork_tool(tool, rng.substream("fork"))
        else:
            raw = tool.raw
        sha, md5 = self._mk_hashes(raw)
        if self.vt is not None and sha not in self._seen_hashes:
            record = SampleRecord(
                sha256=sha, md5=md5, raw=raw,
                behavior=BehaviorScript(),
                first_seen=as_of,
                source=(chosen_sources := self._pick_sources(rng))[0],
            sources=chosen_sources,
                kind="tool",
                true_campaign_id=campaign.campaign_id,
            )
            self._register_sample(record, campaign)
        self._tool_drop_hashes[key] = sha
        return sha

    def _maybe_pack(self, rng: DeterministicRNG,
                    campaign: GroundTruthCampaign, raw: bytes) -> bytes:
        if campaign.packer is None:
            return raw
        # Campaign-level obfuscation means >=80% of samples are packed;
        # other packer-using campaigns pack about half their builds,
        # landing the corpus-wide packed share near the paper's ~30%.
        prob = 0.9 if campaign.uses_obfuscation else 0.48
        if not rng.bernoulli(prob):
            return raw
        packer = (CUSTOM_CRYPTER if campaign.packer == "custom"
                  else PACKERS[campaign.packer])
        return pack(raw, packer)

    _SOURCES = ["Virus Total", "Palo Alto Networks", "Hybrid Analysis",
                "Virus Share"]
    _SOURCE_W = [0.61, 0.385, 0.004, 0.001]

    def _pick_source(self, rng: DeterministicRNG) -> str:
        return rng.choices(self._SOURCES, weights=self._SOURCE_W)[0]

    #: P(sample ALSO appears in feed), per feed: VT carries nearly
    #: everything, Palo Alto about half — which is why Table III's
    #: per-source counts (956K + 629K + ...) exceed the 1.23M total.
    _SOURCE_OVERLAP = {
        # calibrated so the marginal feed coverage matches Table III:
        # P(VT) ~ 956K/1.23M = 0.78, P(PaloAlto) ~ 629K/1.23M = 0.51.
        "Virus Total": 0.436,
        "Palo Alto Networks": 0.203,
        "Hybrid Analysis": 0.0007,
        "Virus Share": 0.0004,
    }

    def _pick_sources(self, rng: DeterministicRNG) -> List[str]:
        """Primary feed plus every other feed that also carries it."""
        primary = self._pick_source(rng)
        sources = [primary]
        for feed, probability in self._SOURCE_OVERLAP.items():
            if feed != primary and rng.bernoulli(probability):
                sources.append(feed)
        return sources

    def _register_sample(self, record: SampleRecord,
                         campaign: Optional[GroundTruthCampaign]) -> None:
        self._sample_counter += 1
        self.samples.append(record)
        self._seen_hashes.add(record.sha256)
        if campaign is not None:
            campaign.sample_hashes.append(record.sha256)

    # ------------------------------------------------------------------
    # fixtures
    # ------------------------------------------------------------------

    def _add_pre2014_reuse_fixture(self) -> List[SampleRecord]:
        """Table V: droppers seen in 2012/2013 later updated to mine XMR."""
        miner_hashes = {s.sha256 for s in self.samples if s.kind == "miner"}
        xmr_campaigns = [
            c for c in self.campaigns if c.coin == "XMR"
            and any(sha in miner_hashes for sha in c.sample_hashes)
        ]
        miners_by_campaign = {
            c.campaign_id: [sha for sha in c.sample_hashes
                            if sha in miner_hashes]
            for c in xmr_campaigns
        }
        return self._emit_pre2014_fixture(xmr_campaigns, miners_by_campaign)

    def _emit_pre2014_fixture(
            self, xmr_campaigns: List[GroundTruthCampaign],
            miners_by_campaign: Dict[int, List[str]]) -> List[SampleRecord]:
        """Emit the reuse fixture given XMR-with-miner campaigns in
        campaign order and their miner hashes (streaming mode passes
        only the first three such campaigns — the only ones targeted)."""
        rng = self.rng.substream("pre2014")
        if len(xmr_campaigns) < 2:
            return []
        targets = [xmr_campaigns[0], xmr_campaigns[0], xmr_campaigns[1],
                   xmr_campaigns[min(2, len(xmr_campaigns) - 1)]]
        years = [2012, 2013, 2013, 2013]
        emitted: List[SampleRecord] = []
        for index, (year, campaign) in enumerate(zip(years, targets)):
            behavior = BehaviorScript()
            behavior.append(HttpGet("http://updates.old-botnet.ru/stage2"))
            miners = miners_by_campaign[campaign.campaign_id]
            # drop up to two children so the dropper stays recoverable
            # even when one child fails the sanity checks
            children = (miners if len(miners) <= 2
                        else rng.sample(miners, 2))
            child = children[0]
            for dropped in children:
                behavior.append(DropFile("stage2.exe", dropped))
            raw = build_binary(
                ExecutableKind.PE,
                code=pseudo_code(rng.substream(f"pre2014code:{index}"),
                                 1500),
                strings=["http://updates.old-botnet.ru/stage2",
                         f"build-{year}-{index}"],
            )
            sha, md5 = self._mk_hashes(raw)
            record = SampleRecord(
                sha256=sha, md5=md5, raw=raw, behavior=behavior,
                first_seen=datetime.date(year, rng.randint(1, 12),
                                         rng.randint(1, 28)),
                source="Virus Total",
                kind="ancillary",
                true_campaign_id=campaign.campaign_id,
            )
            self._register_sample(record, campaign)
            emitted.append(record)
            for dropped in children:
                self._parent_links.setdefault(dropped, []).append(sha)
        return emitted

    def _emit_junk(self) -> None:
        """Non-mining feed noise the sanity checks must drop (§III-B)."""
        for _ in self._iter_junk():
            pass

    def _iter_junk(self):
        """Generate junk samples one at a time (streaming-friendly).

        ``_sample_counter`` equals ``len(self.samples)`` on the batch
        path, so sizing the junk share off the counter keeps the draw
        sequence identical while letting streaming mode drain
        ``self.samples`` between chunks.
        """
        rng = self.rng.substream("junk")
        mining_count = self._sample_counter
        count = int(mining_count * self.config.junk_ratio)
        for i in range(count):
            roll = rng.random()
            if roll < 0.55:
                # generic malware, no mining IoCs
                raw = build_binary(
                    ExecutableKind.PE, code=pseudo_code(rng.substream(f"junk{i}"), 900),
                    strings=["C:\\Windows\\System32\\cmd.exe",
                             "SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"],
                )
                kind = "junk"
            elif roll < 0.80:
                # web cryptojacker: script, not an executable
                raw = (b"<script src='https://coinhive.com/lib/"
                       + rng.randbytes(8).hex().encode() + b".js'></script>")
                kind = "junk"
            else:
                # corrupt / data blob
                raw = rng.randbytes(rng.randint(100, 600))
                kind = "junk"
            sha, md5 = self._mk_hashes(raw)
            record = SampleRecord(
                sha256=sha, md5=md5, raw=raw, behavior=BehaviorScript(),
                first_seen=datetime.date(rng.randint(2010, 2018),
                                         rng.randint(1, 12),
                                         rng.randint(1, 28)),
                source=(chosen_sources := self._pick_sources(rng))[0],
            sources=chosen_sources,
                kind=kind,
            )
            self._register_sample(record, None)
            yield record

    # ------------------------------------------------------------------
    # intel publication
    # ------------------------------------------------------------------

    def _publish_intel(self) -> None:
        """Emit the VT reports (detection model) and a slice of HA runs."""
        whitelist = self.stock.whitelist_hashes()
        sandbox = Sandbox(self.resolver, SandboxEnvironment(
            analysis_date=datetime.date(2018, 9, 1)))
        for sample in self.samples:
            rng = self.rng.substream(f"intel:{sample.sha256}")
            report = self._make_vt_report(rng, sample, whitelist)
            self.vt.add_report(report)
            if sample.kind == "miner" and rng.bernoulli(0.03):
                self.ha.publish(sandbox.run(sample.sha256, sample.behavior))

    def _make_vt_report(self, rng: DeterministicRNG, sample: SampleRecord,
                        whitelist: set) -> AvReport:
        from repro.binfmt.packers import identify_packer
        campaign = None
        if sample.true_campaign_id is not None:
            campaign = self._campaign_by_id(sample.true_campaign_id)
        # detection count model
        if sample.kind == "tool" and sample.sha256 in whitelist:
            positives = rng.randint(12, 22)   # AVs flag tools as riskware
            label_base = "PUA.CoinMiner"
        elif sample.kind == "tool":
            positives = rng.randint(10, 20)
            label_base = "PUA.CoinMiner"
        elif sample.kind == "junk":
            if len(sample.raw) and sample.raw[:1] == b"<":
                positives = rng.randint(5, 18)
                label_base = "JS.CoinHive"
            elif sample.raw[:2] == b"MZ":
                positives = rng.randint(10, 30)
                label_base = "Trojan.Generic"
            else:
                positives = rng.randint(0, 3)
                label_base = "Heur.Suspicious"
        else:
            packer = identify_packer(sample.raw)
            from repro.binfmt.entropy import shannon_entropy
            if packer is None and shannon_entropy(sample.raw) > 7.5:
                positives = rng.randint(4, 12)    # crypters evade many AVs
            elif packer is not None:
                # known packers are trivially unpacked by AV engines
                positives = rng.randint(10, 26)
            else:
                positives = rng.randint(12, 32)
            label_base = ("Trojan.CoinMiner" if sample.kind == "miner"
                          else "Trojan.Dropper")
        positives = min(positives, len(AV_VENDORS))
        vendors = rng.sample(_AV_VENDOR_LIST, positives)
        detections = {}
        for vendor in vendors:
            label = f"{label_base}.{rng.hexbytes(2)}"
            if (campaign is not None and campaign.uses_ppi
                    and campaign.ppi_botnet and rng.bernoulli(0.35)):
                label = f"Win32.{campaign.ppi_botnet}.{rng.hexbytes(2)}"
            seen = sample.first_seen or datetime.date(2019, 2, 1)
            lag = rng.randint(0, 120)
            detections[vendor] = (label, add_days(seen, lag))
        # first_seen can be missing for recent samples (VT rate limits)
        first_seen = sample.first_seen
        if (first_seen is not None and first_seen.year >= 2019
                and rng.bernoulli(dist.MISSING_FIRST_SEEN_FRACTION * 3)):
            first_seen = None
        contacted = [a.domain for a in sample.behavior
                     if isinstance(a, DnsQuery)]
        contacted += [a.host for a in sample.behavior
                      if isinstance(a, StratumSession)
                      and any(ch.isalpha() for ch in a.host)]
        return AvReport(
            sha256=sample.sha256,
            md5=sample.md5,
            first_seen=first_seen,
            detections=detections,
            itw_urls=list(sample.itw_urls),
            parents=list(self._parent_links.get(sample.sha256, [])),
            contacted_domains=sorted(set(contacted)),
            file_type=("PE" if sample.raw[:2] == b"MZ" else
                       "ELF" if sample.raw[:4] == b"\x7fELF" else "DATA"),
        )

    def _campaign_by_id(self, campaign_id: int) -> Optional[GroundTruthCampaign]:
        if not hasattr(self, "_campaign_index"):
            self._campaign_index: Dict[int, GroundTruthCampaign] = {}
        idx = self._campaign_index
        if len(idx) != len(self.campaigns):
            idx.clear()
            idx.update({c.campaign_id: c for c in self.campaigns})
        return idx.get(campaign_id)


def generate_world(config: Optional[ScenarioConfig] = None) -> SyntheticWorld:
    """Convenience wrapper: build a world with the given config."""
    return EcosystemGenerator(config).generate()
