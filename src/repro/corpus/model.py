"""Data model of the synthetic world."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.simtime import Date
from repro.forums.corpus import ForumCorpus
from repro.intel.ha import HaService
from repro.intel.vt import AvReport, VtService
from repro.sandbox.emulator import SandboxReport
from repro.netsim.dns import DnsZone, PassiveDns, Resolver
from repro.osint.feeds import OsintFeeds
from repro.osint.stock_tools import StockToolCatalog
from repro.pools.directory import PoolDirectory
from repro.sandbox.behavior import BehaviorScript


@dataclass
class ScenarioConfig:
    """Knobs of the ecosystem generator.

    ``scale`` multiplies campaign counts relative to the paper (1.0 =
    the paper's 11,387 campaigns; the default keeps unit tests quick).
    ``include_case_studies`` adds the hand-built Freebuf and USA-138
    fixtures of §V.
    """

    seed: int = 2019
    scale: float = 0.02
    include_case_studies: bool = True
    include_junk: bool = True
    junk_ratio: float = 1.2
    mining_stride_days: int = 7
    samples_cap: int = 400


@dataclass
class GroundTruthCampaign:
    """What the generator knows that the pipeline must rediscover."""

    campaign_id: int
    actor_id: int
    identifier_kind: str            # "wallet" | "email" | "unknown"
    coin: Optional[str]             # ticker for wallet campaigns
    identifiers: List[str] = field(default_factory=list)
    pools: List[str] = field(default_factory=list)
    start: Optional[Date] = None
    end: Optional[Date] = None
    band: Optional[int] = None      # earnings band index (XMR only)
    target_xmr: float = 0.0
    actual_xmr: float = 0.0         # filled by the mining driver
    uses_proxy: bool = False
    proxy_host: Optional[str] = None
    uses_cname: bool = False
    cname_domains: List[str] = field(default_factory=list)
    uses_ppi: bool = False
    ppi_botnet: Optional[str] = None
    uses_stock_tool: bool = False
    stock_framework: Optional[str] = None
    uses_obfuscation: bool = False
    packer: Optional[str] = None
    hosting_urls: List[str] = field(default_factory=list)
    known_operation: Optional[str] = None
    updates_after_forks: bool = False
    sample_hashes: List[str] = field(default_factory=list)
    bot_ips: int = 1                # distinct infected IPs seen by pools
    label: Optional[str] = None     # human name for case-study fixtures
    fixed_sample_count: Optional[int] = None  # case studies pin this
    custom_driven: bool = False     # mining already replayed by fixture

    @property
    def alive_days(self) -> int:
        if self.start is None or self.end is None:
            return 0
        return (self.end - self.start).days


@dataclass
class SampleRecord:
    """One binary in the synthetic feed.

    ``true_campaign_id`` is ground truth for validation only — the
    measurement pipeline never reads fields prefixed ``true_``.
    """

    sha256: str
    md5: str
    raw: bytes
    behavior: BehaviorScript
    first_seen: Optional[Date]
    source: str                      # primary feed the sample came from
    kind: str                        # "miner" | "ancillary" | "junk" | "tool"
    itw_urls: List[str] = field(default_factory=list)
    #: every feed carrying the sample (feeds overlap heavily — the
    #: paper's Appendix C); always contains ``source``.
    sources: List[str] = field(default_factory=list)
    true_campaign_id: Optional[int] = None
    true_wallets: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.sources:
            self.sources = [self.source]
        elif self.source not in self.sources:
            self.sources.insert(0, self.source)

    @property
    def size(self) -> int:
        return len(self.raw)


@dataclass
class SampleChunk:
    """One bounded slice of a streamed world (see
    :meth:`repro.corpus.generator.EcosystemGenerator.stream_chunks`).

    Holds the samples plus exactly the intel the pipeline needs to
    analyse them: their VT reports and any community sandbox (HA)
    reports, both keyed by sha256.  Chunks are disjoint and, taken
    together, reproduce the batch world sample-for-sample and
    report-for-report.
    """

    samples: List["SampleRecord"]
    reports: Dict[str, AvReport]
    ha_reports: Dict[str, SandboxReport]

    def __len__(self) -> int:
        return len(self.samples)


@dataclass
class SyntheticWorld:
    """Everything the measurement pipeline gets to see (plus ground truth)."""

    config: ScenarioConfig
    samples: List[SampleRecord]
    vt: VtService
    ha: HaService
    dns_zone: DnsZone
    resolver: Resolver
    passive_dns: PassiveDns
    pool_directory: PoolDirectory
    osint: OsintFeeds
    stock_catalog: StockToolCatalog
    ground_truth: List[GroundTruthCampaign]
    forum_corpus: Optional[ForumCorpus] = None

    def sample_by_hash(self, sha256: str) -> Optional[SampleRecord]:
        """The sample with this SHA-256, or None."""
        if not hasattr(self, "_by_hash"):
            self._by_hash: Dict[str, SampleRecord] = {
                s.sha256: s for s in self.samples
            }
        return self._by_hash.get(sha256)

    def miners(self) -> List[SampleRecord]:
        """Samples whose ground-truth kind is miner."""
        return [s for s in self.samples if s.kind == "miner"]

    def truth_by_id(self) -> Dict[int, GroundTruthCampaign]:
        """Ground-truth campaigns indexed by campaign id."""
        return {c.campaign_id: c for c in self.ground_truth}

    def truth_for_sample(self, sha256: str) -> Optional[GroundTruthCampaign]:
        """Ground-truth campaign of a sample hash, or None."""
        sample = self.sample_by_hash(sha256)
        if sample is None or sample.true_campaign_id is None:
            return None
        return self.truth_by_id().get(sample.true_campaign_id)
