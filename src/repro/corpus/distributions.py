"""Paper-calibrated distributions for the ecosystem generator.

Every constant here traces to a specific exhibit of the paper; the
comment on each names it.  The generator consumes these so the synthetic
ecosystem reproduces the *shapes* (who wins, band proportions,
infrastructure mix) rather than hard-coding the result tables.
"""

from typing import Dict, List, Tuple

# -- Table IV (left): campaigns per identifier type ------------------------

#: number of campaigns per currency in the paper.
CAMPAIGNS_PER_CURRENCY: Dict[str, int] = {
    "XMR": 2449,
    "BTC": 1535,
    "ZEC": 178,
    "ETN": 150,
    "ETH": 132,
    "AEON": 57,
    "SUMO": 18,
    "ITNS": 8,
    "TRTL": 3,
    "BCN": 1,
}

#: campaigns keyed by e-mails / unknown identifiers (Table IV).
EMAIL_CAMPAIGNS = 5008
UNKNOWN_CAMPAIGNS = 2195

# -- Table XV: e-mail identifiers per pool ---------------------------------

#: minergate absorbs 97% of e-mail miners.
EMAIL_POOL_WEIGHTS: List[Tuple[str, float]] = [
    ("minergate", 0.966),
    ("50btc", 0.008),
    ("crypto-pool", 0.001),
    ("supportxmr", 0.001),
    ("nanopool", 0.001),
    ("btcdig", 0.001),
    ("slushpool", 0.0005),
    ("moneropool", 0.0005),
    ("minemonero", 0.0005),
    ("dwarfpool", 0.0005),
    ("minexmr", 0.0005),
    ("f2pool", 0.0005),
    ("monerohash", 0.0005),
    ("suprnova", 0.0005),
    ("monerominers", 0.0005),
    ("prohash", 0.018),  # remainder bucket ("OTHERS")
]

# -- §IV-D: XMR earnings bands ----------------------------------------------

#: (band upper bound in XMR, campaign count) from Table XI's header row:
#: <100: 2013, [100,1k): 154, [1k,10k): 53, >=10k: 15 — of 2,235 total.
XMR_BAND_COUNTS: List[Tuple[float, float, int]] = [
    (0.0, 100.0, 2013),
    (100.0, 1000.0, 154),
    (1000.0, 10000.0, 53),
    (10000.0, 200000.0, 15),
]

#: median earnings target per band (XMR).  Derived from Table VIII: the
#: >=10K band holds 15 campaigns whose listed values cluster around
#: ~23K XMR (the 163K outlier is the Freebuf fixture, added separately).
XMR_BAND_MEDIAN: List[float] = [2.5, 300.0, 2600.0, 21000.0]

#: XMR campaigns whose wallets never appear at a transparent pool
#: (2,449 campaigns in Table IV vs 2,235 with payments in Table VIII).
XMR_NO_PAYMENT_FRACTION = (2449 - 2235) / 2449

# -- Table XI: infrastructure / stealth / activity by band -------------------

#: band index -> probability of each feature (rows of Table XI).
BAND_FEATURES: Dict[str, List[float]] = {
    # third-party infrastructure
    "ppi": [0.013, 0.032, 0.094, 0.133],
    "stock_tool": [0.086, 0.149, 0.302, 0.133],
    # stealth
    "obfuscation": [0.040, 0.052, 0.038, 0.0],
    "cname": [0.003, 0.052, 0.094, 0.267],
    "proxy": [0.026, 0.065, 0.038, 0.200],
}

#: band index -> start-year distribution (Table XI "Start:" rows).
BAND_START_YEAR: List[Dict[int, float]] = [
    {2014: 0.002, 2015: 0.002, 2016: 0.055, 2017: 0.396, 2018: 0.540,
     2019: 0.005},                       # <100 (residual mass to 17/18)
    {2014: 0.045, 2015: 0.019, 2016: 0.260, 2017: 0.520, 2018: 0.130,
     2019: 0.026},                       # 100-1k
    {2014: 0.113, 2015: 0.038, 2016: 0.415, 2017: 0.415, 2018: 0.019,
     2019: 0.0},                         # 1k-10k
    {2014: 0.467, 2015: 0.133, 2016: 0.400, 2017: 0.0, 2018: 0.0,
     2019: 0.0},                         # >=10k
]

#: band index -> probability that the campaign operator pushes a miner
#: update at a PoW fork.  Calibrated so that overall survival matches
#: §VI: ~27.6% of campaigns stay active past Apr-18, 10.7% past Oct-18
#: and 3.5% past Mar-19 (Table XI "+" rows).
BAND_FORK_UPDATE_PROB: List[float] = [0.45, 0.55, 0.50, 0.60]

# -- Table VII: XMR pool popularity ------------------------------------------

#: weights for picking a campaign's *primary* pool; shaped so that
#: crypto-pool and dwarfpool dominate mined volume while minexmr has the
#: most wallets (it gets a high pick rate but smaller campaigns).
XMR_POOL_WEIGHTS: List[Tuple[str, float]] = [
    ("minexmr", 0.26),
    ("crypto-pool", 0.21),
    ("dwarfpool", 0.20),
    ("nanopool", 0.16),
    ("monerohash", 0.09),
    ("ppxxmr", 0.08),
    ("supportxmr", 0.10),
    ("poolto", 0.016),
    ("prohash", 0.023),
    ("moneropool", 0.015),
    ("minemonero", 0.012),
    ("xmrpool", 0.012),
    ("moneroocean", 0.010),
    ("viaxmr", 0.008),
    ("hashvault", 0.008),
    ("xmrnanopool", 0.006),
    ("monerominers", 0.006),
]

#: extra volume multiplier for pools where the big earners concentrate
#: (Table VII: crypto-pool 429K XMR despite fewer wallets than minexmr).
POOL_VOLUME_AFFINITY: Dict[str, float] = {
    "crypto-pool": 3.0,
    "dwarfpool": 1.6,
    "minexmr": 0.8,
    "poolto": 1.2,
}

# -- Fig 5: number of pools used by band -------------------------------------

#: band index -> (min_pools, max_pools); 97% of >=1K-XMR campaigns use
#: more than one pool; seven of the >=10K use exactly one.
BAND_POOL_COUNT: List[Tuple[int, int]] = [
    (1, 3),
    (1, 6),
    (1, 10),
    (1, 17),
]

#: probability a campaign in the band uses a single pool.
BAND_SINGLE_POOL_PROB: List[float] = [0.55, 0.30, 0.03, 0.45]

# -- Fig 4 / §IV-B: wallets and samples per campaign --------------------------

#: most campaigns hold 1-2 identifiers; the tail reaches 304.
WALLETS_PER_CAMPAIGN_P: List[Tuple[int, float]] = [
    (1, 0.72), (2, 0.15), (3, 0.05), (4, 0.03), (7, 0.03), (14, 0.015),
    (30, 0.003), (80, 0.0015), (304, 0.0005),
]

#: samples per campaign: heavy tail (C#4 has 12K samples in the paper).
SAMPLES_PARETO_ALPHA = 1.1
SAMPLES_MIN = 1
SAMPLES_CAP = 400  # scaled-down stand-in for the 12K extreme

# -- Table VI / XIII: hosting domains ------------------------------------------

#: (domain, weight, is_public_repo).  Public repos/CDNs are shared
#: infrastructure: hosting there must NOT glue campaigns together unless
#: the full URL matches.
HOSTING_DOMAINS: List[Tuple[str, float, bool]] = [
    ("github.com", 0.16, True),
    ("s3.amazonaws.com", 0.085, True),
    ("www.weebly.com", 0.08, True),
    ("drive.google.com", 0.038, True),
    ("hrtests.ru", 0.037, False),
    ("cdn.discordapp.com", 0.034, True),
    ("a.cuntflaps.me", 0.032, False),
    ("file-5.ru", 0.030, False),
    ("telekomtv-internet.ro", 0.030, False),
    ("mondoconnx.com", 0.026, False),
    ("free-run.tk", 0.025, False),
    ("b.reich.io", 0.023, False),
    ("mysuperproga.com", 0.022, False),
    ("goo.gl", 0.022, True),
    ("bitbucket.org", 0.020, True),
    ("dropbox.com", 0.017, True),
    ("4sync.com", 0.016, True),
    ("store4.up-00.com", 0.016, False),
    ("pack.1e5.com", 0.018, False),
    ("directxex.com", 0.018, False),
    ("xmr.enjoytopic.tk", 0.014, False),
    ("a.pomf.cat", 0.014, True),
]

# -- Table X: packers -----------------------------------------------------------

#: weights over packer families for obfuscating campaigns (UPX dominant).
PACKER_WEIGHTS: List[Tuple[str, float]] = [
    ("UPX", 0.895),
    ("NSIS", 0.048),
    ("maxorder", 0.016),
    ("SFX", 0.011),
    ("INNO", 0.007),
    ("eval", 0.006),
    ("docwrite", 0.004),
    ("ARJ", 0.002),
    ("CAB", 0.002),
    ("Enigma", 0.002),
    ("custom", 0.007),
]

# -- Table IX: stock-tool framework choice ---------------------------------------

#: instance counts from Table IX shape the framework pick weights.
STOCK_TOOL_WEIGHTS: List[Tuple[str, float]] = [
    ("claymore", 0.40),
    ("xmrig", 0.38),
    ("niceHash", 0.17),
    ("learnMiner", 0.03),
    ("ccminer", 0.02),
]

# -- §IV-E: PPI services -----------------------------------------------------------

#: (botnet, relative weight): 511 Virut / 46 Ramnit / 27 Nitol samples.
PPI_WEIGHTS: List[Tuple[str, float]] = [
    ("Virut", 0.875),
    ("Ramnit", 0.079),
    ("Nitol", 0.046),
]

# -- BTC-side of Table IV -------------------------------------------------------------

#: samples per year, BTC (Table IV right).  Used to place BTC campaigns.
BTC_SAMPLES_PER_YEAR: Dict[int, int] = {
    2012: 9, 2013: 23, 2014: 223, 2015: 115, 2016: 461, 2017: 3800,
    2018: 1300, 2019: 1700,
}

#: samples per year, XMR.
XMR_SAMPLES_PER_YEAR: Dict[int, int] = {
    2012: 1, 2013: 3, 2014: 281, 2015: 1600, 2016: 8700, 2017: 31000,
    2018: 6200, 2019: 14049,
}

# -- misc ratios ------------------------------------------------------------------------

#: ancillaries vs miners (212,923 / 1,017,110 in Table III).
ANCILLARY_RATIO = 212923 / 1017110

#: fraction of raw feed that is NOT crypto-mining malware
#: (4.5M collected vs 1.23M kept after sanity checks).
JUNK_RATIO = 1.2

#: fraction of samples whose first_seen could not be fetched (the "~19?"
#: rows of Table IV, a VT rate-limit artifact).
MISSING_FIRST_SEEN_FRACTION = 0.18

#: probability that a miner sample also mines a short donation slice
#: (the behaviour that motivates the donation-wallet whitelist, §III-E).
DONATION_SLICE_PROB = 0.02


def band_of(xmr_earned: float) -> int:
    """Earnings band index for a campaign total (Table XI columns)."""
    if xmr_earned < 100.0:
        return 0
    if xmr_earned < 1000.0:
        return 1
    if xmr_earned < 10000.0:
        return 2
    return 3


BAND_LABELS = ["<100", "[100-1k)", "[1k-10k)", ">=10k"]
