"""Minimal Base58 codec (Bitcoin alphabet, no 0/O/I/l).

Used to mint syntactically plausible wallet addresses and to verify the
lightweight checksum embedded in generated addresses.
"""

ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_INDEX = {ch: i for i, ch in enumerate(ALPHABET)}


def b58encode(data: bytes) -> str:
    """Encode bytes as a Base58 string (leading zeros become '1')."""
    num = int.from_bytes(data, "big")
    encoded = []
    while num > 0:
        num, rem = divmod(num, 58)
        encoded.append(ALPHABET[rem])
    pad = 0
    for byte in data:
        if byte == 0:
            pad += 1
        else:
            break
    return "1" * pad + "".join(reversed(encoded))


def b58decode(text: str) -> bytes:
    """Decode a Base58 string; raises ValueError on foreign characters."""
    num = 0
    for ch in text:
        try:
            num = num * 58 + _INDEX[ch]
        except KeyError:
            raise ValueError(f"invalid base58 character: {ch!r}") from None
    body = num.to_bytes((num.bit_length() + 7) // 8, "big") if num else b""
    pad = 0
    for ch in text:
        if ch == "1":
            pad += 1
        else:
            break
    return b"\x00" * pad + body


def is_base58(text: str) -> bool:
    """True when every character belongs to the Base58 alphabet."""
    return bool(text) and all(ch in _INDEX for ch in text)
