"""Cryptocurrency wallet-address substrate.

Provides address *generation* (used by the synthetic corpus to mint
actor wallets) and address *detection* (used by the extraction stage to
classify identifiers pulled out of binaries, command lines and Stratum
logins — §III-C and §IV-B of the paper).
"""

from repro.wallets.base58 import b58decode, b58encode
from repro.wallets.addresses import (
    Coin,
    COINS,
    WalletFactory,
    checksum_suffix,
    is_valid_address,
)
from repro.wallets.detect import (
    IdentifierKind,
    classify_identifier,
    extract_identifiers,
)

__all__ = [
    "b58decode",
    "b58encode",
    "Coin",
    "COINS",
    "WalletFactory",
    "checksum_suffix",
    "is_valid_address",
    "IdentifierKind",
    "classify_identifier",
    "extract_identifiers",
]
