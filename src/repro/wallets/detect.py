"""Identifier detection and classification (§III-C, §IV-B).

The pipeline extracts 16,050 distinct identifiers in the paper: wallet
addresses of ten currencies, e-mails (minergate logins) and opaque
usernames.  ``classify_identifier`` reproduces the regex-based currency
attribution; ``extract_identifiers`` scans free text (command lines,
Stratum login parameters, network payloads) for candidates.
"""

import enum
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.wallets.addresses import COINS, Coin, is_valid_address


__all__ = [
    "ClassifiedIdentifier",
    "IdentifierKind",
    "classify_identifier",
    "classify_identifier_legacy",
    "extract_identifiers",
    "extract_identifiers_legacy",
]


class IdentifierKind(enum.Enum):
    """What kind of mining identifier a string is."""

    WALLET = "wallet"
    EMAIL = "email"
    USERNAME = "username"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ClassifiedIdentifier:
    """An identifier with its kind and (for wallets) coin ticker."""

    value: str
    kind: IdentifierKind
    ticker: Optional[str] = None


_EMAIL_RE = re.compile(r"^[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}$")

#: Most-specific-first ordering so e.g. 'Sumoo...' is not eaten by a
#: shorter prefix pattern.
_COIN_ORDER = [
    "SUMO", "TRTL", "ETN", "AEON", "ITNS", "ZEC", "ETH",
    "XMR", "XMR_SUB", "BCN", "LTC", "DOGE", "BTC",
]

_B58 = r"[1-9A-HJ-NP-Za-km-z]"


def _coin_regex(coin: Coin) -> re.Pattern:
    if coin.alphabet == "hex":
        return re.compile(re.escape(coin.prefix) + r"[0-9a-f]{%d}" % coin.body_length)
    return re.compile(re.escape(coin.prefix) + _B58 + r"{%d}" % coin.body_length)


_COIN_RES: List[Tuple[str, re.Pattern]] = [
    (ticker, _coin_regex(COINS[ticker])) for ticker in _COIN_ORDER
]

#: All thirteen per-coin regexes fused into one named-group
#: alternation.  ``fullmatch`` tries branches in ``_COIN_ORDER``, so
#: ``lastgroup`` names the same registry key the sequential loop would
#: have stopped at; coin prefixes start with pairwise-distinct
#: characters, so at most one branch can ever match a given string and
#: a failed checksum cannot be rescued by a later branch.
_COMBINED_COIN_RE = re.compile("|".join(
    f"(?P<{key}>{_coin_regex(COINS[key]).pattern})" for key in _COIN_ORDER
))

#: First characters a wallet candidate can start with (one per coin).
_WALLET_LEAD_CHARS = frozenset(
    COINS[key].prefix[0] for key in _COIN_ORDER)


def classify_identifier(value: str) -> ClassifiedIdentifier:
    """Classify a mining identifier string.

    Wallet classification requires both a full-string regex match and a
    valid checksum; otherwise the identifier falls through to e-mail and
    finally to the 'unknown' bucket (Table IV's 2,195 unknowns).
    """
    stripped = value.strip()
    if stripped and stripped[0] in _WALLET_LEAD_CHARS:
        match = _COMBINED_COIN_RE.fullmatch(stripped)
        if match is not None:
            key = match.lastgroup
            if is_valid_address(stripped, COINS[key]):
                # registry key and ticker differ for variants
                # (XMR_SUB -> XMR)
                return ClassifiedIdentifier(
                    stripped, IdentifierKind.WALLET, COINS[key].ticker)
    if "@" in stripped and _EMAIL_RE.fullmatch(stripped):
        return ClassifiedIdentifier(stripped, IdentifierKind.EMAIL)
    if stripped.startswith("worker_"):
        return ClassifiedIdentifier(stripped, IdentifierKind.USERNAME)
    return ClassifiedIdentifier(stripped, IdentifierKind.UNKNOWN)


def classify_identifier_legacy(value: str) -> ClassifiedIdentifier:
    """Sequential per-coin reference classifier (equivalence oracle)."""
    stripped = value.strip()
    for key, pattern in _COIN_RES:
        if pattern.fullmatch(stripped) and is_valid_address(stripped,
                                                            COINS[key]):
            return ClassifiedIdentifier(stripped, IdentifierKind.WALLET,
                                        COINS[key].ticker)
    if _EMAIL_RE.fullmatch(stripped):
        return ClassifiedIdentifier(stripped, IdentifierKind.EMAIL)
    if stripped.startswith("worker_"):
        return ClassifiedIdentifier(stripped, IdentifierKind.USERNAME)
    return ClassifiedIdentifier(stripped, IdentifierKind.UNKNOWN)


#: Characters that can delimit an identifier inside a command line.
_TOKEN_SPLIT_RE = re.compile(r"[\s\"'=,;|<>()]+")

#: Maximal delimiter-free runs long enough to be identifiers — the
#: same tokens ``_TOKEN_SPLIT_RE.split`` yields, minus the short ones.
_CANDIDATE_RUN_RE = re.compile(r"[^\s\"'=,;|<>()]{6,}")


def extract_identifiers(text: str) -> List[ClassifiedIdentifier]:
    """Scan free text for wallet/e-mail identifiers.

    Returns classified identifiers in order of first appearance, without
    duplicates.  Tokens classified as UNKNOWN are dropped — in free text
    almost everything is an unknown token; unknown identifiers only enter
    the dataset via explicit Stratum ``login`` fields (see
    :mod:`repro.core.dynamic_analysis`).

    Only tokens that can possibly classify as wallet or e-mail reach
    the classifier: a wallet token must start with a coin-prefix lead
    character and an e-mail must contain ``@``, so everything else is
    dropped by two O(1) checks per token.
    """
    seen = set()
    found: List[ClassifiedIdentifier] = []
    lead_chars = _WALLET_LEAD_CHARS
    find = text.find
    for match in _CANDIDATE_RUN_RE.finditer(text):
        start = match.start()
        # gate on the span before materialising the token string
        if (text[start] not in lead_chars
                and find("@", start, match.end()) < 0):
            continue
        token = match.group()
        if token in seen:
            continue
        seen.add(token)
        classified = classify_identifier(token)
        if classified.kind in (IdentifierKind.WALLET, IdentifierKind.EMAIL):
            found.append(classified)
    return found


def extract_identifiers_legacy(text: str) -> List[ClassifiedIdentifier]:
    """Token-split reference extractor (equivalence oracle)."""
    seen = set()
    found: List[ClassifiedIdentifier] = []
    for token in _TOKEN_SPLIT_RE.split(text):
        if len(token) < 6 or token in seen:
            continue
        seen.add(token)
        classified = classify_identifier_legacy(token)
        if classified.kind in (IdentifierKind.WALLET, IdentifierKind.EMAIL):
            found.append(classified)
    return found
