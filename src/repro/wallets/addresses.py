"""Address formats and generation for the coins the paper observes.

Table IV of the paper lists campaigns per currency: Monero, Bitcoin,
zCash, Electroneum, Ethereum, Aeon, Sumokoin, Intensecoin, Turtlecoin and
Bytecoin.  Each coin here carries enough format structure (prefix, body
length, alphabet) that (a) generated addresses are unique and verifiable
and (b) the detection regexes in :mod:`repro.wallets.detect` can classify
them the same way the paper's pipeline classifies real wallets.
"""

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.rng import DeterministicRNG
from repro.wallets.base58 import ALPHABET, is_base58

_CHECK_LEN = 4  # base58 characters of checksum at the end of the body


@dataclass(frozen=True)
class Coin:
    """Static description of a cryptocurrency's address format.

    ``prefix`` is the human-visible leading string, ``body_length`` the
    number of alphabet characters after the prefix (checksum included),
    and ``alphabet`` either ``"base58"`` or ``"hex"``.
    """

    ticker: str
    name: str
    prefix: str
    body_length: int
    alphabet: str = "base58"
    cryptonote: bool = False  # CryptoNote PoW family (ASIC-resistant)

    @property
    def total_length(self) -> int:
        return len(self.prefix) + self.body_length


#: Registry of coin formats, keyed by ticker.  Lengths follow the real
#: formats closely enough for regex classification to be unambiguous.
COINS: Dict[str, Coin] = {
    "XMR": Coin("XMR", "Monero", "4", 94, cryptonote=True),
    # Monero subaddresses ('8...') share the XMR ticker: operators use
    # them to segment botnets under one underlying wallet.
    "XMR_SUB": Coin("XMR", "Monero subaddress", "8", 94, cryptonote=True),
    "BTC": Coin("BTC", "Bitcoin", "1", 32),
    "ZEC": Coin("ZEC", "zCash", "t1", 33),
    "ETN": Coin("ETN", "Electroneum", "etn", 95, cryptonote=True),
    "ETH": Coin("ETH", "Ethereum", "0x", 40, alphabet="hex"),
    "AEON": Coin("AEON", "Aeon", "Wm", 95, cryptonote=True),
    "SUMO": Coin("SUMO", "Sumokoin", "Sumoo", 94, cryptonote=True),
    "ITNS": Coin("ITNS", "Intensecoin", "iz", 95, cryptonote=True),
    "TRTL": Coin("TRTL", "Turtlecoin", "TRTL", 95, cryptonote=True),
    "BCN": Coin("BCN", "Bytecoin", "2", 94, cryptonote=True),
    "LTC": Coin("LTC", "Litecoin", "L", 32),
    "DOGE": Coin("DOGE", "Dogecoin", "D", 32),
}


def checksum_suffix(prefix: str, body: str) -> str:
    """Deterministic 4-character checksum over prefix + body head.

    A stand-in for the real coin checksums: enough to let
    :func:`is_valid_address` reject mangled or truncated strings, which
    the paper's extraction heuristics must also do.
    """
    digest = hashlib.sha256((prefix + body).encode("ascii")).digest()
    return "".join(ALPHABET[b % 58] for b in digest[:_CHECK_LEN])


def is_valid_address(address: str, coin: Optional[Coin] = None) -> bool:
    """Validate structure + checksum of a generated address.

    When ``coin`` is None, every registered coin is tried.
    """
    candidates = [coin] if coin else list(COINS.values())
    for c in candidates:
        if not address.startswith(c.prefix):
            continue
        body = address[len(c.prefix):]
        if len(body) != c.body_length:
            continue
        if c.alphabet == "hex":
            if not all(ch in "0123456789abcdef" for ch in body):
                continue
            return True  # hex coins (ETH) carry no base58 checksum here
        if not is_base58(body):
            continue
        head, check = body[:-_CHECK_LEN], body[-_CHECK_LEN:]
        if checksum_suffix(c.prefix, head) == check:
            return True
    return False


class WalletFactory:
    """Mints unique, valid wallet addresses for the synthetic corpus."""

    def __init__(self, rng: DeterministicRNG) -> None:
        self._rng = rng.substream("wallets")
        self._minted: set = set()

    def new_address(self, ticker: str) -> str:
        """Generate a fresh, checksum-valid address for ``ticker``."""
        coin = COINS[ticker]
        while True:
            if coin.alphabet == "hex":
                body = self._rng.hexbytes(coin.body_length // 2)
                address = coin.prefix + body
            else:
                head_len = coin.body_length - _CHECK_LEN
                head = "".join(
                    self._rng.choice(ALPHABET) for _ in range(head_len)
                )
                address = coin.prefix + head + checksum_suffix(coin.prefix, head)
            if address not in self._minted:
                self._minted.add(address)
                return address

    def new_email(self, pool_hint: str = "minergate") -> str:
        """Generate an e-mail identifier (97% of e-mails mine at minergate)."""
        user = "".join(
            self._rng.choice("abcdefghijklmnopqrstuvwxyz0123456789")
            for _ in range(self._rng.randint(6, 14))
        )
        domain = self._rng.choice(
            ["gmail.com", "mail.ru", "yandex.ru", "protonmail.com", "qq.com"]
        )
        return f"{user}@{domain}"

    def new_username(self) -> str:
        """Generate a bare pool username (the paper's 'unknown' identifiers)."""
        return "worker_" + self._rng.hexbytes(6)
