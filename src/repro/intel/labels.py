"""AV-label normalisation (an AVClass-style plurality vote).

Vendor labels are noisy ("Trojan.CoinMiner.ab", "Win32.Virut.x",
"PUA.CoinMiner"); measurement studies normalise them into family tokens
and take a plurality across vendors.  The pipeline's PPI tagging uses
simple token matching; this utility generalises it for analysts working
with the exported dataset.
"""

import re
from collections import Counter
from typing import Dict, Iterable, List, Optional

from repro.intel.vt import AvReport

#: generic tokens that never identify a family.
_GENERIC_TOKENS = frozenset({
    "trojan", "win32", "win64", "w32", "w64", "generic", "malware",
    "agent", "heur", "riskware", "pua", "pup", "application",
    "suspicious", "variant", "behaveslike", "genetic", "js", "html",
    "script", "downloader", "gen", "worm", "virus",
})

#: tokens that collapse into the miner family.
_MINER_TOKENS = frozenset({
    "coinminer", "bitcoinminer", "coinmine", "miner", "cryptonight",
    "minerd", "xmrig", "coinhive",
})

_SPLIT_RE = re.compile(r"[.\-_/:! ]+")


__all__ = [
    "family_distribution",
    "family_of",
    "normalize_token",
    "tokenize_label",
]


def tokenize_label(label: str) -> List[str]:
    """Lower-cased, generic-token-free tokens of one vendor label."""
    tokens = []
    for token in _SPLIT_RE.split(label.lower()):
        if not token or len(token) < 3:
            continue
        if token in _GENERIC_TOKENS:
            continue
        if token.isdigit() or re.fullmatch(r"[0-9a-f]{4,}", token):
            continue  # hashes / variant counters
        tokens.append(token)
    return tokens


def normalize_token(token: str) -> str:
    """Collapse miner synonyms into one family name."""
    if token in _MINER_TOKENS:
        return "coinminer"
    return token


def family_of(report: AvReport,
              min_votes: int = 2) -> Optional[str]:
    """Plurality family across vendors; None when no token repeats."""
    votes: Counter = Counter()
    for label in report.labels():
        seen_this_label = set()
        for token in tokenize_label(label):
            family = normalize_token(token)
            if family not in seen_this_label:
                votes[family] += 1
                seen_this_label.add(family)
    if not votes:
        return None
    family, count = votes.most_common(1)[0]
    if count < min_votes:
        return None
    return family


def family_distribution(reports: Iterable[AvReport],
                        min_votes: int = 2) -> Dict[str, int]:
    """Family -> sample count over a corpus slice."""
    counts: Counter = Counter()
    for report in reports:
        family = family_of(report, min_votes=min_votes)
        if family is not None:
            counts[family] += 1
    return dict(counts.most_common())
