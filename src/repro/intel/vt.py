"""VirusTotal-style AV aggregation service.

Stores one :class:`AvReport` per sample and answers the metadata and
advanced-search queries the measurement pipeline issues.  The number of
positives per sample is assigned by the corpus generator's detection
model (packed and younger samples detect less), and — as the paper's
Table I notes — positives for a sample can *grow over time*; the service
models this with a detection date per vendor.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.simtime import Date

#: A stable roster of AV vendor names for label attribution.
AV_VENDORS: Tuple[str, ...] = (
    "Avast", "AVG", "Avira", "BitDefender", "ClamAV", "Comodo", "CrowdStrike",
    "Cylance", "DrWeb", "Emsisoft", "ESET-NOD32", "F-Prot", "F-Secure",
    "Fortinet", "GData", "Ikarus", "Jiangmin", "K7GW", "Kaspersky",
    "Malwarebytes", "McAfee", "Microsoft", "NANO-Antivirus", "Panda",
    "Qihoo-360", "Rising", "Sophos", "Symantec", "TrendMicro", "VBA32",
    "VIPRE", "ViRobot", "Webroot", "Yandex", "Zillya", "ZoneAlarm",
)


@dataclass
class AvReport:
    """Everything VT knows about one sample."""

    sha256: str
    md5: str = ""
    first_seen: Optional[Date] = None
    #: vendor -> (label, detection date); a vendor missing = not detected.
    detections: Dict[str, Tuple[str, Date]] = field(default_factory=dict)
    total_engines: int = len(AV_VENDORS)
    itw_urls: List[str] = field(default_factory=list)
    parents: List[str] = field(default_factory=list)       # dropper hashes
    contacted_domains: List[str] = field(default_factory=list)
    file_type: str = "PE"

    def positives(self, as_of: Optional[Date] = None) -> int:
        """Detections visible at ``as_of`` (all of them when None)."""
        if as_of is None:
            return len(self.detections)
        return sum(1 for _, (_, when) in self.detections.items()
                   if when <= as_of)

    def labels(self) -> List[str]:
        """Every vendor label on this sample."""
        return [label for label, _ in self.detections.values()]

    def miner_label_count(self) -> int:
        """Vendors whose label contains a miner keyword."""
        keywords = ("miner", "coinmine", "bitcoinminer", "cryptonight")
        return sum(
            1 for label in self.labels()
            if any(k in label.lower() for k in keywords)
        )


class VtService:
    """In-memory VT: report storage plus the paper's advanced queries."""

    def __init__(self, rate_limit: Optional[int] = None) -> None:
        self._reports: Dict[str, AvReport] = {}
        self._rate_limit = rate_limit
        self._queries_served = 0

    def add_report(self, report: AvReport) -> None:
        """Store (or replace) the report for one sample."""
        self._reports[report.sha256] = report

    def __len__(self) -> int:
        return len(self._reports)

    def get_report(self, sha256: str) -> Optional[AvReport]:
        """Fetch a report; returns None past the (optional) rate limit.

        The paper could not retrieve first-seen for its newest samples
        because of VT rate limits (the "~19?" row of Table IV); setting
        ``rate_limit`` reproduces that failure mode.
        """
        if self._rate_limit is not None and self._queries_served >= self._rate_limit:
            return None
        self._queries_served += 1
        return self._reports.get(sha256)

    def reports(self) -> Iterable[AvReport]:
        """All stored reports (iteration order is insertion order)."""
        return self._reports.values()

    # -- advanced searches (private-API style) ---------------------------

    def search_by_contacted_domain(self, domain: str) -> List[AvReport]:
        """Samples whose contacted domains include ``domain`` (suffix-aware)."""
        domain = domain.lower()
        return [
            r for r in self._reports.values()
            if any(d == domain or d.endswith("." + domain)
                   for d in r.contacted_domains)
        ]

    def search_miner_labeled(self, min_vendors: int = 10) -> List[AvReport]:
        """Samples labelled Miner (or variants) by >= ``min_vendors`` AVs."""
        return [
            r for r in self._reports.values()
            if r.miner_label_count() >= min_vendors
        ]

    def search_min_positives(self, min_positives: int) -> List[AvReport]:
        """Samples detected by at least ``min_positives`` vendors."""
        return [
            r for r in self._reports.values()
            if r.positives() >= min_positives
        ]

    def children_of(self, sha256: str) -> List[str]:
        """Samples that list ``sha256`` among their parents."""
        return [
            r.sha256 for r in self._reports.values() if sha256 in r.parents
        ]
