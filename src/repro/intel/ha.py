"""Hybrid-Analysis-style report store.

HA contributes ready-made dynamic-analysis intelligence: when a sample
already has an HA report the pipeline reuses it instead of detonating
the sample itself (§III-A item 3, §III-C).
"""

from typing import Dict, List, Optional

from repro.sandbox.emulator import SandboxReport


class HaService:
    """Keyed store of community sandbox reports."""

    def __init__(self) -> None:
        self._reports: Dict[str, SandboxReport] = {}

    def publish(self, report: SandboxReport) -> None:
        """Store a community sandbox report, keyed by sample hash."""
        self._reports[report.sample_sha256] = report

    def get_report(self, sha256: str) -> Optional[SandboxReport]:
        """The stored sandbox report for a hash, or None."""
        return self._reports.get(sha256)

    def __len__(self) -> int:
        return len(self._reports)

    def __contains__(self, sha256: str) -> bool:
        return sha256 in self._reports

    def search_stratum_hosts(self, host: str) -> List[str]:
        """Hashes of samples whose flows contacted ``host`` over Stratum."""
        host = host.lower()
        return [
            sha
            for sha, report in self._reports.items()
            if any(f.dst_host == host for f in report.flows.stratum_flows())
        ]
