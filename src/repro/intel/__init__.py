"""Threat-intelligence substrate: the VirusTotal / Hybrid Analysis analogs.

The paper's largest data sources are VT (binaries + metadata via the
private API) and Hybrid Analysis (ready-made sandbox reports).  This
package provides the same query surface over the synthetic corpus:
per-sample AV reports (positives, vendor labels, first-seen, in-the-wild
URLs, parents, contacted domains) and the advanced searches the sanity
checks rely on (§III-B): by contacted pool domain, by "Miner" label
count, by Stratum IoC.
"""

from repro.intel.vt import AvReport, VtService
from repro.intel.ha import HaService

__all__ = ["AvReport", "VtService", "HaService"]
