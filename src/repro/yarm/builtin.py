"""Built-in miner-detection rules.

A condensed equivalent of the public Yara-Rules crypto-mining set the
paper applies: Stratum protocol markers, well-known pool domains, wallet
prefixes and miner command-line flags.
"""

from repro.yarm.engine import RuleSet, compile_rules

_MINER_RULES_SOURCE = r'''
rule StratumProtocol : miner network {
    meta:
        description = "Stratum mining protocol URI or login method"
    strings:
        $uri1 = "stratum+tcp://"
        $uri2 = "stratum+ssl://"
        $login = "\"method\":\"login\""
        $submit = "\"method\":\"submit\""
    condition:
        any of them
}

rule KnownPoolDomains : miner network {
    meta:
        description = "Hard-coded well-known mining pool domains"
    strings:
        $p1 = "crypto-pool.fr" nocase
        $p2 = "dwarfpool.com" nocase
        $p3 = "minexmr.com" nocase
        $p4 = "nanopool.org" nocase
        $p5 = "supportxmr.com" nocase
        $p6 = "minergate.com" nocase
        $p7 = "monerohash.com" nocase
        $p8 = "ppxxmr.com" nocase
        $p9 = "prohash.net" nocase
        $p10 = "poolto.be" nocase
    condition:
        any of them
}

rule MinerCommandLine : miner cmdline {
    meta:
        description = "Stock miner command-line options"
    strings:
        $o1 = "--donate-level"
        $o2 = "-o stratum"
        $u1 = "-u 4"
        $a1 = "--algo cryptonight"
        $a2 = "--algo=cryptonight"
        $t1 = "--max-cpu-usage"
    condition:
        any of them
}

rule CryptonoteWallet : miner wallet {
    meta:
        description = "CryptoNote-style wallet address prefix heuristics"
    strings:
        $xmr = /4[1-9A-HJ-NP-Za-km-z]{93}[1-9A-HJ-NP-Za-km-z]/
        $etn = /etn[1-9A-HJ-NP-Za-km-z]{95}/
        $aeon = /Wm[1-9A-HJ-NP-Za-km-z]{95}/
    condition:
        any of them
}

rule IdleMiningEvasion : miner evasion {
    meta:
        description = "Idle-mining / monitor-evasion markers"
    strings:
        $i1 = "GetLastInputInfo"
        $i2 = "idle_mining"
        $t1 = "Taskmgr.exe" nocase
        $s1 = "--cpu-priority 0"
    condition:
        any of them
}
'''


_COMPILED: RuleSet = None


def builtin_miner_rules() -> RuleSet:
    """The built-in miner rule set, compiled once per process.

    Rule evaluation is stateless, so every SanityChecker (including one
    per worker process in parallel runs) shares the same compiled set
    instead of re-parsing the source.
    """
    global _COMPILED
    if _COMPILED is None:
        _COMPILED = compile_rules(_MINER_RULES_SOURCE)
    return _COMPILED
