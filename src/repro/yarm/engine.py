"""Parser and evaluator for the yarm rule language.

Supported syntax (a practical subset of YARA)::

    rule StratumMiner : miner tag2 {
        meta:
            author = "repro"
            score = 10
        strings:
            $proto = "stratum+tcp://"
            $pool  = /pool\\.[a-z0-9.-]+/ nocase
            $magic = { DE AD BE EF }
        condition:
            $proto or (any of them) or 2 of them
    }

Evaluation is over raw bytes; matches report rule name, tags, and which
string identifiers fired.
"""

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import RuleSyntaxError

# --------------------------------------------------------------------------
# String patterns
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class StringPattern:
    """One ``$id = ...`` declaration."""

    identifier: str
    kind: str            # "text" | "regex" | "hex"
    pattern: bytes       # raw needle for text/hex; regex source for regex
    nocase: bool = False

    def matches(self, data: bytes,
                lowered: Optional[bytes] = None) -> bool:
        """Whether the pattern occurs anywhere in ``data``.

        ``lowered`` lets callers share one ``data.lower()`` across all
        nocase patterns of a scan instead of re-folding per pattern.
        """
        if self.kind == "text":
            if self.nocase:
                haystack = data.lower() if lowered is None else lowered
                return self.pattern.lower() in haystack
            return self.pattern in data
        if self.kind == "hex":
            return self.pattern in data
        flags = re.IGNORECASE if self.nocase else 0
        return re.search(self.pattern, data, flags) is not None


# --------------------------------------------------------------------------
# Condition AST
# --------------------------------------------------------------------------


class _Node:
    def evaluate(self, fired: Dict[str, bool]) -> bool:
        raise NotImplementedError


@dataclass
class _Ident(_Node):
    name: str

    def evaluate(self, fired: Dict[str, bool]) -> bool:
        if self.name not in fired:
            raise RuleSyntaxError(f"unknown string ${self.name} in condition")
        return fired[self.name]


@dataclass
class _NOf(_Node):
    count: int  # 0 means "any", -1 means "all"

    def evaluate(self, fired: Dict[str, bool]) -> bool:
        total = sum(1 for v in fired.values() if v)
        if self.count == -1:
            return total == len(fired) and bool(fired)
        needed = 1 if self.count == 0 else self.count
        return total >= needed


@dataclass
class _Not(_Node):
    child: _Node

    def evaluate(self, fired: Dict[str, bool]) -> bool:
        return not self.child.evaluate(fired)


@dataclass
class _Bool(_Node):
    op: str
    left: _Node
    right: _Node

    def evaluate(self, fired: Dict[str, bool]) -> bool:
        if self.op == "and":
            return self.left.evaluate(fired) and self.right.evaluate(fired)
        return self.left.evaluate(fired) or self.right.evaluate(fired)


# --------------------------------------------------------------------------
# Condition parser (tokenizer + recursive descent)
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<ident>\$[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<number>\d+)|(?P<word>[A-Za-z_]+))"
)


def _tokenize_condition(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise RuleSyntaxError(f"bad condition near: {remainder[:20]!r}")
        pos = match.end()
        for group in ("lparen", "rparen", "ident", "number", "word"):
            value = match.group(group)
            if value is not None:
                tokens.append(value)
                break
    return tokens


class _ConditionParser:
    def __init__(self, tokens: Sequence[str]) -> None:
        self._tokens = list(tokens)
        self._pos = 0

    def parse(self) -> _Node:
        node = self._parse_or()
        if self._pos != len(self._tokens):
            raise RuleSyntaxError(
                f"trailing tokens in condition: {self._tokens[self._pos:]}"
            )
        return node

    def _peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise RuleSyntaxError("unexpected end of condition")
        self._pos += 1
        return token

    def _parse_or(self) -> _Node:
        node = self._parse_and()
        while self._peek() == "or":
            self._advance()
            node = _Bool("or", node, self._parse_and())
        return node

    def _parse_and(self) -> _Node:
        node = self._parse_unary()
        while self._peek() == "and":
            self._advance()
            node = _Bool("and", node, self._parse_unary())
        return node

    def _parse_unary(self) -> _Node:
        token = self._peek()
        if token == "not":
            self._advance()
            return _Not(self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self) -> _Node:
        token = self._advance()
        if token == "(":
            node = self._parse_or()
            if self._advance() != ")":
                raise RuleSyntaxError("missing closing parenthesis")
            return node
        if token.startswith("$"):
            return _Ident(token[1:])
        if token in ("any", "all"):
            self._expect("of")
            self._expect("them")
            return _NOf(0 if token == "any" else -1)
        if token.isdigit():
            self._expect("of")
            self._expect("them")
            return _NOf(int(token))
        raise RuleSyntaxError(f"unexpected token in condition: {token!r}")

    def _expect(self, word: str) -> None:
        token = self._advance()
        if token != word:
            raise RuleSyntaxError(f"expected {word!r}, got {token!r}")


# --------------------------------------------------------------------------
# Rule compilation
# --------------------------------------------------------------------------


@dataclass
class CompiledRule:
    """A parsed rule ready for evaluation."""

    name: str
    tags: List[str]
    meta: Dict[str, str]
    strings: List[StringPattern]
    condition: _Node

    def evaluate(self, data: bytes,
                 lowered: Optional[bytes] = None) -> Optional["Match"]:
        """Evaluate the rule on ``data``; a Match or None."""
        if lowered is None and any(
                sp.nocase and sp.kind == "text" for sp in self.strings):
            lowered = data.lower()
        fired = {sp.identifier: sp.matches(data, lowered)
                 for sp in self.strings}
        if self.condition.evaluate(fired):
            return Match(
                rule=self.name,
                tags=list(self.tags),
                fired=[name for name, hit in fired.items() if hit],
            )
        return None


@dataclass(frozen=True)
class Match:
    """A rule that matched, with the string identifiers that fired."""

    rule: str
    tags: List[str]
    fired: List[str]


_RULE_HEADER_RE = re.compile(
    r"rule\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*(?::\s*(?P<tags>[^{]+))?\{"
)
_STRING_DECL_RE = re.compile(
    r"\$(?P<id>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*(?P<value>.+?)\s*$"
)
_META_DECL_RE = re.compile(
    r"(?P<key>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*(?P<value>.+?)\s*$"
)


def _parse_string_value(raw: str) -> StringPattern:
    raw = raw.strip()
    nocase = False
    if raw.endswith(" nocase"):
        nocase = True
        raw = raw[: -len(" nocase")].rstrip()
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        text = raw[1:-1].encode("utf-8").decode("unicode_escape")
        return StringPattern("", "text", text.encode("latin-1"), nocase)
    if raw.startswith("/") and raw.endswith("/") and len(raw) >= 2:
        return StringPattern("", "regex", raw[1:-1].encode("latin-1"), nocase)
    if raw.startswith("{") and raw.endswith("}"):
        hex_text = raw[1:-1].replace(" ", "")
        if len(hex_text) % 2 != 0 or not re.fullmatch(r"[0-9A-Fa-f]*", hex_text):
            raise RuleSyntaxError(f"bad hex string: {raw!r}")
        return StringPattern("", "hex", bytes.fromhex(hex_text), nocase)
    raise RuleSyntaxError(f"unrecognised string value: {raw!r}")


def compile_rules(source: str) -> "RuleSet":
    """Compile rule source text into a :class:`RuleSet`."""
    rules: List[CompiledRule] = []
    pos = 0
    while True:
        header = _RULE_HEADER_RE.search(source, pos)
        if not header:
            break
        depth = 1
        body_start = header.end()
        idx = body_start
        while idx < len(source) and depth > 0:
            if source[idx] == "{":
                depth += 1
            elif source[idx] == "}":
                depth -= 1
            idx += 1
        if depth != 0:
            raise RuleSyntaxError(f"unbalanced braces in rule {header.group('name')}")
        body = source[body_start:idx - 1]
        pos = idx
        rules.append(_compile_rule_body(header, body))
    if not rules:
        raise RuleSyntaxError("no rules found in source")
    return RuleSet(rules)


def _compile_rule_body(header: "re.Match", body: str) -> CompiledRule:
    name = header.group("name")
    tags = (header.group("tags") or "").split()
    sections: Dict[str, List[str]] = {"meta": [], "strings": [], "condition": []}
    current: Optional[str] = None
    for line in body.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        lowered = stripped.rstrip(":")
        if stripped.endswith(":") and lowered in sections:
            current = lowered
            continue
        if current is None:
            raise RuleSyntaxError(f"statement outside section in rule {name}")
        sections[current].append(stripped)

    meta: Dict[str, str] = {}
    for line in sections["meta"]:
        match = _META_DECL_RE.match(line)
        if not match:
            raise RuleSyntaxError(f"bad meta line in {name}: {line!r}")
        meta[match.group("key")] = match.group("value").strip('"')

    strings: List[StringPattern] = []
    for line in sections["strings"]:
        match = _STRING_DECL_RE.match(line)
        if not match:
            raise RuleSyntaxError(f"bad string line in {name}: {line!r}")
        pattern = _parse_string_value(match.group("value"))
        strings.append(
            StringPattern(match.group("id"), pattern.kind, pattern.pattern,
                          pattern.nocase)
        )

    condition_text = " ".join(sections["condition"])
    if not condition_text:
        raise RuleSyntaxError(f"rule {name} has no condition")
    condition = _ConditionParser(_tokenize_condition(condition_text)).parse()
    return CompiledRule(name, tags, meta, strings, condition)


class RuleSet:
    """A compiled collection of rules.

    ``scan`` goes through the one-pass multi-pattern kernel
    (:class:`repro.perf.scan.ScanKernel`), compiled lazily once per
    rule set; ``scan_legacy`` keeps the original per-pattern evaluator
    as the reference oracle for the kernel's equivalence tests.
    """

    def __init__(self, rules: List[CompiledRule]) -> None:
        self.rules = rules
        self._kernel = None
        self._needs_lower = any(
            sp.nocase and sp.kind == "text"
            for rule in rules for sp in rule.strings)

    def __len__(self) -> int:
        return len(self.rules)

    def kernel(self):
        """The compiled scan kernel for this rule set (built once)."""
        if self._kernel is None:
            from repro.perf.scan import ScanKernel
            self._kernel = ScanKernel(self)
        return self._kernel

    def scan(self, data) -> List[Match]:
        """Evaluate every rule against ``data``; return the matches.

        ``data`` may be raw bytes or a prepared
        :class:`repro.perf.scan.ScanContext` (which lets callers share
        derived views across consumers).
        """
        return self.kernel().scan(data)

    def scan_legacy(self, data: bytes) -> List[Match]:
        """Per-pattern reference scan, with one shared lowercase fold."""
        lowered = data.lower() if self._needs_lower else None
        matches = []
        for rule in self.rules:
            match = rule.evaluate(data, lowered)
            if match is not None:
                matches.append(match)
        return matches

    def names(self) -> List[str]:
        """Names of every rule in the set."""
        return [rule.name for rule in self.rules]
