"""Mini-YARA rule engine (``yarm`` = YARA, reduced, matching).

The paper applies publicly available YARA rules to decide whether a
malware sample is a crypto-miner (§III-B).  This package implements a
self-contained subset of YARA — text strings, regex strings, hex strings,
and boolean conditions over them (``any of them``, ``2 of them``,
``$a and not $b``, parentheses) — plus the built-in miner rule set the
pipeline ships with.
"""

from repro.yarm.engine import (
    CompiledRule,
    Match,
    RuleSet,
    compile_rules,
)
from repro.yarm.builtin import builtin_miner_rules

__all__ = [
    "CompiledRule",
    "Match",
    "RuleSet",
    "compile_rules",
    "builtin_miner_rules",
]
