"""Exchange-rate substrate.

The paper converts XMR payments to USD with the historical rate of the
payment date when available and a flat 54 USD/XMR otherwise (§III-D).
This package provides a synthetic daily rate series shaped like the real
2014-2019 XMR/USD curve (sub-dollar through 2016, the late-2017 rally to
~470, the 2018 decay to ~45), plus series for BTC and ETN.
"""

from repro.market.rates import (
    AVERAGE_XMR_USD,
    ExchangeRates,
    RATES,
)

__all__ = ["AVERAGE_XMR_USD", "ExchangeRates", "RATES"]
