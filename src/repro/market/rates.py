"""Synthetic daily exchange rates for the simulated coins.

Anchor points follow the real public price history closely enough that
USD figures land in the paper's ballpark (e.g. campaigns that mined
through the January 2018 peak show the XMR-vs-USD divergence visible in
Table VIII).  Rates between anchors are log-linearly interpolated, with
a small deterministic daily wobble so no two days are identical.
"""

import bisect
import datetime
import hashlib
import math
from typing import Dict, List, Optional, Tuple

from repro.common.simtime import Date

#: Paper's fallback rate when a payment has no dated price (§III-D).
AVERAGE_XMR_USD = 54.0

_Anchors = List[Tuple[Date, float]]

_XMR_ANCHORS: _Anchors = [
    (datetime.date(2014, 6, 1), 2.5),
    (datetime.date(2015, 1, 1), 0.5),
    (datetime.date(2015, 8, 1), 0.55),
    (datetime.date(2016, 1, 1), 0.5),
    (datetime.date(2016, 9, 1), 10.0),
    (datetime.date(2017, 1, 1), 14.0),
    (datetime.date(2017, 8, 1), 50.0),
    (datetime.date(2017, 12, 1), 200.0),
    (datetime.date(2018, 1, 7), 470.0),
    (datetime.date(2018, 4, 6), 175.0),
    (datetime.date(2018, 7, 1), 140.0),
    (datetime.date(2018, 10, 18), 105.0),
    (datetime.date(2018, 12, 15), 45.0),
    (datetime.date(2019, 3, 9), 50.0),
    (datetime.date(2019, 4, 30), 65.0),
]

_BTC_ANCHORS: _Anchors = [
    (datetime.date(2010, 7, 1), 0.06),
    (datetime.date(2011, 6, 1), 18.0),
    (datetime.date(2012, 1, 1), 5.5),
    (datetime.date(2013, 4, 1), 120.0),
    (datetime.date(2013, 12, 1), 1000.0),
    (datetime.date(2014, 6, 1), 620.0),
    (datetime.date(2015, 1, 1), 250.0),
    (datetime.date(2016, 6, 1), 600.0),
    (datetime.date(2017, 6, 1), 2600.0),
    (datetime.date(2017, 12, 17), 19000.0),
    (datetime.date(2018, 6, 1), 7000.0),
    (datetime.date(2018, 12, 15), 3200.0),
    (datetime.date(2019, 4, 30), 5200.0),
]

_ETN_ANCHORS: _Anchors = [
    (datetime.date(2017, 11, 1), 0.05),
    (datetime.date(2018, 1, 7), 0.16),
    (datetime.date(2018, 7, 1), 0.012),
    (datetime.date(2019, 4, 30), 0.007),
]


class ExchangeRates:
    """Daily USD rate lookup for one coin."""

    def __init__(self, ticker: str, anchors: _Anchors,
                 fallback: Optional[float] = None, wobble: float = 0.03) -> None:
        if not anchors:
            raise ValueError("need at least one anchor")
        self.ticker = ticker
        self._anchors = sorted(anchors)
        self._dates = [d for d, _ in self._anchors]
        if fallback is None:
            # Era-average fallback: the geometric mean of the anchor
            # rates, consistent with the log-linear interpolation.
            # Without this, undated non-XMR payments converted at $0
            # and silently vanished from every USD total.
            logs = [math.log(r) for _, r in self._anchors]
            fallback = math.exp(sum(logs) / len(logs))
        self._fallback = fallback
        self._wobble = wobble

    @property
    def first_date(self) -> Date:
        return self._dates[0]

    def rate(self, when: Date) -> Optional[float]:
        """USD per coin at ``when``; None before the coin existed."""
        if when < self._dates[0]:
            return None
        if when >= self._dates[-1]:
            base = self._anchors[-1][1]
        else:
            idx = bisect.bisect_right(self._dates, when)
            d0, r0 = self._anchors[idx - 1]
            d1, r1 = self._anchors[idx]
            span = (d1 - d0).days or 1
            frac = (when - d0).days / span
            base = math.exp(math.log(r0) + frac * (math.log(r1) - math.log(r0)))
        return base * self._daily_wobble(when)

    def _daily_wobble(self, when: Date) -> float:
        """Deterministic +-wobble% factor so the series is not smooth."""
        digest = hashlib.sha256(
            f"{self.ticker}:{when.isoformat()}".encode("ascii")
        ).digest()
        unit = digest[0] / 255.0 * 2.0 - 1.0
        return 1.0 + unit * self._wobble

    def to_usd(self, amount: float, when: Optional[Date]) -> float:
        """Convert ``amount`` coins to USD, with the paper's fallback.

        A dated payment uses that day's rate; an undated one (or a
        date before the price series starts) uses the configured
        fallback — the paper's period average for XMR, the derived
        era average for every other coin.
        """
        rate = self.rate(when) if when is not None else None
        if rate is None:
            rate = self._fallback
        return amount * rate


#: Shared rate tables keyed by ticker.
RATES: Dict[str, ExchangeRates] = {
    "XMR": ExchangeRates("XMR", _XMR_ANCHORS, fallback=AVERAGE_XMR_USD),
    "BTC": ExchangeRates("BTC", _BTC_ANCHORS),
    "ETN": ExchangeRates("ETN", _ETN_ANCHORS),
}
