"""Online campaign aggregation: union-find with incremental merging.

The batch :class:`~repro.core.aggregation.CampaignAggregator` builds
one networkx graph over the full record set and cuts connected
components.  Streaming ingestion cannot afford that — every new feed
batch would mean a full rebuild — so this aggregator maintains the same
partition *online*: records arrive one at a time, each contributes the
edges :func:`~repro.core.aggregation.record_attachments` derives (the
single source of truth shared with the batch path), and a union-find
forest tracks components with near-constant-time merges.

Grouping is monotone — adding records or proxy IPs can only merge
components, never split them — which is exactly the property that makes
union-find sufficient.  The one retroactive feature is the proxy rule:
an IP may be established as a proxy *after* records pointing at it were
ingested, so sample nodes are indexed by destination IP and
:meth:`IncrementalAggregator.add_proxy_ips` unions the backlog.

:meth:`IncrementalAggregator.campaigns` materialises through the same
``build_campaign``/``finalize_campaigns`` helpers as the batch
aggregator, so the end state is *equal*, not merely isomorphic.
"""

from typing import Dict, Iterable, List, Optional, Set

from repro.core.aggregation import (
    Campaign,
    GroupingPolicy,
    Node,
    build_campaign,
    finalize_campaigns,
    record_attachments,
)
from repro.core.records import MinerRecord
from repro.core.unionfind import UnionFind
from repro.osint.feeds import OsintFeeds


class IncrementalAggregator:
    """Union-find over samples + infrastructure nodes, fed in batches."""

    def __init__(self, osint: OsintFeeds,
                 policy: Optional[GroupingPolicy] = None) -> None:
        self._osint = osint
        self._policy = policy or GroupingPolicy.full()
        #: records by sha256, in arrival order
        self._records: Dict[str, MinerRecord] = {}
        #: union-find forest (node order doubles as insertion order);
        #: shared with the sharded aggregator in repro.scale.shards.
        self._forest: UnionFind = UnionFind()
        self._proxy_ips: Set[str] = set()
        #: sample nodes by the destination IP their record mined against
        self._by_dst_ip: Dict[str, List[Node]] = {}

    @property
    def merges(self) -> int:
        """Total component merges performed (distinct roots united)."""
        return self._forest.merges

    def _ensure(self, node: Node) -> None:
        self._forest.ensure(node)

    def _find(self, node: Node) -> Node:
        return self._forest.find(node)

    def _union(self, a: Node, b: Node) -> bool:
        return self._forest.union(a, b)

    # -- ingestion ---------------------------------------------------------

    def add_record(self, record: MinerRecord) -> int:
        """Ingest one record's nodes and edges; returns merges caused.

        Records are keyed by sha256 and must arrive at most once — the
        ingestion service deduplicates upstream.
        """
        if record.sha256 in self._records:
            raise ValueError(f"duplicate record {record.sha256}")
        before = self.merges
        node: Node = ("sample", record.sha256)
        self._ensure(node)
        for other, _feature in record_attachments(
                record, self._policy, self._osint, self._proxy_ips):
            self._union(node, other)
        if self._policy.proxies and record.dst_ip is not None:
            # indexed regardless of current proxy status: the IP may be
            # established as a proxy by a later batch.
            self._by_dst_ip.setdefault(record.dst_ip, []).append(node)
        self._records[record.sha256] = record
        return self.merges - before

    def add_proxy_ips(self, ips: Iterable[str]) -> int:
        """Register proxies, retroactively linking earlier records.

        Every already-ingested record that mined against one of these
        IPs gains its proxy edge now — the same edge the batch
        aggregator would have drawn with the full proxy set up front.
        Returns the number of component merges this caused.
        """
        before = self.merges
        for ip in ips:
            if ip in self._proxy_ips:
                continue
            self._proxy_ips.add(ip)
            if not self._policy.proxies:
                continue
            for node in self._by_dst_ip.get(ip, []):
                self._union(node, ("proxy", ip))
        return self.merges - before

    # -- inspection --------------------------------------------------------

    @property
    def num_records(self) -> int:
        """Number of records ingested so far."""
        return len(self._records)

    @property
    def proxy_ips(self) -> Set[str]:
        """The proxy IPs registered so far (a copy)."""
        return set(self._proxy_ips)

    def num_components(self) -> int:
        """Current number of connected components (all node kinds)."""
        return self._forest.num_components()

    def components(self) -> List[List[Node]]:
        """Connected components, ordered by first-node insertion."""
        return self._forest.components()

    def campaigns(self) -> List[Campaign]:
        """Materialise the current campaign set (non-destructive).

        Uses the same component-to-campaign materialisation as the
        batch aggregator, so for any record/proxy set the result equals
        ``CampaignAggregator.aggregate()`` over the same records.
        """
        campaigns = []
        for component in self.components():
            campaign = build_campaign(component, self._records)
            if campaign is not None:
                campaigns.append(campaign)
        return finalize_campaigns(campaigns)
