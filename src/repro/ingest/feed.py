"""Feed replay: slicing a corpus into dated ingestion batches.

The paper's dataset arrived as *daily* feed drops (VirusTotal,
VirusShare, Hybrid Analysis) accumulated over 2007-2019.  The
:class:`FeedScheduler` reconstructs that shape from a pre-generated
:class:`~repro.corpus.model.SyntheticWorld`: samples are ordered by
``first_seen`` and chunked into windows of ``batch_days`` simulated
days.  The slicing is a pure function of the world and the window
width, so two runs — or a run and its resumption — always see the exact
same batch sequence.

Samples with no ``first_seen`` (the paper's "~19?" VT-rate-limit rows)
are pinned to the first batch: they were on disk before polling began,
so a streaming consumer meets them at the start of the replay.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.simtime import Date, add_days
from repro.corpus.model import SyntheticWorld


@dataclass(frozen=True)
class FeedBatch:
    """One dated drop of the feed: the samples first seen in a window.

    ``indices`` are positions into ``world.samples`` — the scheduler
    never copies sample payloads.  ``start``/``end`` bound the window
    (both inclusive); batches for empty windows are skipped, so
    ``batch_id`` counts delivered batches, not calendar windows.
    """

    batch_id: int
    start: Optional[Date]
    end: Optional[Date]
    indices: Tuple[int, ...]

    @property
    def num_samples(self) -> int:
        """Number of samples delivered in this batch."""
        return len(self.indices)


class FeedScheduler:
    """Deterministic batch plan over a synthetic world's sample feed.

    ``batch_days`` is the window width in simulated days (1 replays the
    paper's daily drops; larger values coarsen the replay).  Every
    sample appears in exactly one batch, and batch order is the order a
    live consumer would have met the samples in.
    """

    def __init__(self, world: SyntheticWorld, batch_days: int = 1) -> None:
        if batch_days < 1:
            raise ValueError("batch_days must be >= 1")
        self.world = world
        self.batch_days = batch_days
        self._batches: Optional[List[FeedBatch]] = None

    def batches(self) -> List[FeedBatch]:
        """The full batch plan (computed once, then cached)."""
        if self._batches is None:
            self._batches = self._plan()
        return self._batches

    @property
    def num_batches(self) -> int:
        """Number of non-empty batches in the plan."""
        return len(self.batches())

    def _plan(self) -> List[FeedBatch]:
        samples = self.world.samples
        dated = [s.first_seen for s in samples if s.first_seen is not None]
        if not dated:
            # degenerate corpus: everything lands in one undated batch
            if not samples:
                return []
            return [FeedBatch(0, None, None, tuple(range(len(samples))))]
        origin = min(dated)
        buckets = {}
        for index, sample in enumerate(samples):
            if sample.first_seen is None:
                bucket = 0  # pre-polling backlog rides the first drop
            else:
                bucket = (sample.first_seen - origin).days // self.batch_days
            buckets.setdefault(bucket, []).append(index)
        batches: List[FeedBatch] = []
        for batch_id, bucket in enumerate(sorted(buckets)):
            start = add_days(origin, bucket * self.batch_days)
            end = add_days(start, self.batch_days - 1)
            # within a window, keep feed order: by first-seen date, then
            # by position in the corpus (undated backlog first).
            indices = sorted(
                buckets[bucket],
                key=lambda i: (samples[i].first_seen or origin, i))
            batches.append(FeedBatch(batch_id, start, end, tuple(indices)))
        return batches
