"""Streaming feed ingestion: incremental measurement with durable state.

The batch pipeline (:mod:`repro.core.pipeline`) answers "measure this
corpus"; this package answers "keep measuring as the feeds drop":

* :mod:`repro.ingest.feed` — replay a corpus as dated feed batches
* :mod:`repro.ingest.aggregator` — online union-find campaign merging
* :mod:`repro.ingest.checkpoint` — journal + snapshot durability
* :mod:`repro.ingest.service` — the incremental end-to-end service
* :mod:`repro.ingest.codec` — JSON codecs for the durable state

The headline invariant, enforced by the equivalence tests: after the
last batch, the service's campaigns, wallets and profit stats equal the
batch pipeline's output on the same world — and a run killed at any
point resumes to that same state without reprocessing committed work.
"""

from repro.ingest.aggregator import IncrementalAggregator
from repro.ingest.checkpoint import CheckpointStore, JournalReplay
from repro.ingest.feed import FeedBatch, FeedScheduler
from repro.ingest.service import (
    BatchMetrics,
    IngestionResult,
    IngestionService,
)

__all__ = [
    "BatchMetrics",
    "CheckpointStore",
    "FeedBatch",
    "FeedScheduler",
    "IncrementalAggregator",
    "IngestionResult",
    "IngestionService",
    "JournalReplay",
]
