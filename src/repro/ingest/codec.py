"""JSON codecs for the durable ingestion state.

Everything the checkpoint journal and snapshots persist round-trips
through these functions: :class:`~repro.core.records.MinerRecord`,
:class:`~repro.core.sanity.SanityVerdict`, per-sample outcomes and the
funnel stats.  Encoding is plain-JSON (no pickle) so journals stay
inspectable with standard tools and stable across interpreter versions;
dates travel as ISO strings.
"""

import dataclasses
from typing import Any, Dict, Optional

from repro.common.simtime import Date, parse_date
from repro.core.records import MinerRecord
from repro.core.sanity import SanityVerdict
from repro.perf.parallel import SampleOutcome

#: bump when the journal/snapshot layout changes incompatibly.
FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, Date):
        return value.isoformat()
    if isinstance(value, tuple):
        return list(value)
    return value


def _encode_dataclass(obj: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        if isinstance(value, list):
            out[field.name] = [_encode_value(v) for v in value]
        else:
            out[field.name] = _encode_value(value)
    return out


def encode_record(record: MinerRecord) -> Dict[str, Any]:
    """One miner record as a JSON-safe dict (Table I, field for field)."""
    return _encode_dataclass(record)


def decode_record(data: Dict[str, Any]) -> MinerRecord:
    """Inverse of :func:`encode_record`."""
    data = dict(data)
    if data.get("first_seen") is not None:
        data["first_seen"] = parse_date(data["first_seen"])
    return MinerRecord(**data)


def encode_verdict(verdict: SanityVerdict) -> Dict[str, Any]:
    """One sanity verdict as a JSON-safe dict."""
    return _encode_dataclass(verdict)


def decode_verdict(data: Dict[str, Any]) -> SanityVerdict:
    """Inverse of :func:`encode_verdict`."""
    return SanityVerdict(**data)


def encode_outcome(outcome: SampleOutcome) -> Dict[str, Any]:
    """One per-sample analysis outcome as a JSON-safe journal payload."""
    return {
        "index": outcome.index,
        "sha256": outcome.sha256,
        "kind": outcome.kind,
        "verdict": (encode_verdict(outcome.verdict)
                    if outcome.verdict is not None else None),
        "record": (encode_record(outcome.record)
                   if outcome.record is not None else None),
        "has_network": outcome.has_network,
        "used_static": outcome.used_static,
    }


def decode_outcome(data: Dict[str, Any]) -> SampleOutcome:
    """Inverse of :func:`encode_outcome`."""
    return SampleOutcome(
        index=data["index"],
        sha256=data["sha256"],
        kind=data["kind"],
        verdict=(decode_verdict(data["verdict"])
                 if data.get("verdict") is not None else None),
        record=(decode_record(data["record"])
                if data.get("record") is not None else None),
        has_network=data.get("has_network", False),
        used_static=data.get("used_static", False),
    )


def encode_stats(stats) -> Dict[str, Any]:
    """The funnel stats (:class:`PipelineStats`) as a JSON-safe dict."""
    return _encode_dataclass(stats)


def decode_stats(data: Dict[str, Any]):
    """Inverse of :func:`encode_stats`."""
    from repro.core.pipeline import PipelineStats
    return PipelineStats(**data)


def encode_date(day: Optional[Date]) -> Optional[str]:
    """ISO string of a date, passing None through."""
    return day.isoformat() if day is not None else None


def decode_date(text: Optional[str]) -> Optional[Date]:
    """Inverse of :func:`encode_date`."""
    return parse_date(text) if text is not None else None
