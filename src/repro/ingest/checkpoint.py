"""Durable checkpoints: append-only journal + compacted snapshots.

Write path (per batch)::

    outcome lines ... -> commit line -> flush -> fsync
                                     \\-> every N batches: snapshot

The journal (``journal.jsonl``) is the write-ahead source of truth: one
JSON object per line, either a per-sample ``outcome`` or a per-batch
``commit`` marker.  A batch is *committed* iff its commit line made it
to disk; everything after the last commit is an in-flight batch whose
journaled outcomes are reused on resume (already-analysed hashes are
not re-analysed) but whose window is reprocessed.

Snapshots (``snapshot.json``) are compactions, written to a temp file,
fsync'd, then atomically renamed over the previous one; the journal is
rotated afterwards.  A crash between the two leaves duplicate journal
entries for batches the snapshot already covers — the loader drops
entries below the snapshot cursor, so every crash point is safe:

* before the commit line: the batch replays from its journaled outcomes
* after commit, before snapshot: state rebuilds from snapshot + journal
* after snapshot, before rotation: stale journal entries are ignored
"""

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.ingest.codec import FORMAT_VERSION

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"


@dataclass
class JournalReplay:
    """Everything a resume needs, as read back from one checkpoint dir."""

    snapshot: Optional[Dict[str, Any]] = None
    #: committed batches in commit order: (batch_id, outcome payloads)
    committed: List[Tuple[int, List[Dict[str, Any]]]] = \
        field(default_factory=list)
    #: journaled outcomes of the in-flight (uncommitted) batch, if any
    partial: Dict[int, List[Dict[str, Any]]] = field(default_factory=dict)
    #: per-batch metrics in commit order: (batch_id, metrics dict)
    commits: List[Tuple[int, Dict[str, Any]]] = field(default_factory=list)

    @property
    def cursor(self) -> int:
        """Index of the first batch that still needs processing."""
        start = 0
        if self.snapshot is not None:
            start = int(self.snapshot.get("cursor", 0))
        if self.committed:
            start = max(start, max(b for b, _ in self.committed) + 1)
        return start


class CheckpointStore:
    """One ingestion run's durable state under a checkpoint directory.

    ``fsync=False`` trades crash-safety for speed (tests, benchmarks);
    the write ordering and atomic renames are preserved either way.
    """

    def __init__(self, directory, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.directory / JOURNAL_NAME
        self.snapshot_path = self.directory / SNAPSHOT_NAME
        self._fsync = fsync
        self._journal_fh = None

    # -- write path --------------------------------------------------------

    def _journal(self):
        if self._journal_fh is None:
            self._journal_fh = open(self.journal_path, "a",
                                    encoding="utf-8")
        return self._journal_fh

    def append_outcome(self, batch_id: int,
                       payload: Dict[str, Any]) -> None:
        """Journal one per-sample outcome (buffered; synced at commit)."""
        self._write_line({"type": "outcome", "batch": batch_id,
                          "data": payload})

    def commit_batch(self, batch_id: int,
                     metrics: Dict[str, Any]) -> None:
        """Write the batch's commit marker and force it to disk."""
        self._write_line({"type": "commit", "batch": batch_id,
                          "v": FORMAT_VERSION, "metrics": metrics})
        fh = self._journal()
        fh.flush()
        if self._fsync:
            os.fsync(fh.fileno())

    def _write_line(self, obj: Dict[str, Any]) -> None:
        self._journal().write(json.dumps(obj, sort_keys=True) + "\n")

    def write_snapshot(self, state: Dict[str, Any]) -> None:
        """Atomically replace the snapshot, then rotate the journal.

        The snapshot hits disk (tmp file + fsync + rename + directory
        fsync) *before* the journal is truncated, so no crash point can
        lose a committed batch.
        """
        state = dict(state)
        state["v"] = FORMAT_VERSION
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(state, fh, sort_keys=True)
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        self._sync_directory()
        self._rotate_journal()

    def _rotate_journal(self) -> None:
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None
        tmp = self.journal_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.journal_path)
        self._sync_directory()

    def _sync_directory(self) -> None:
        if not self._fsync:
            return
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        """Flush and close the journal handle."""
        if self._journal_fh is not None:
            self._journal_fh.flush()
            if self._fsync:
                os.fsync(self._journal_fh.fileno())
            self._journal_fh.close()
            self._journal_fh = None

    # -- read path ---------------------------------------------------------

    def exists(self) -> bool:
        """Whether this directory holds any checkpoint state."""
        return self.snapshot_path.exists() or self.journal_path.exists()

    def stamp(self) -> Tuple[Tuple[str, int, int], ...]:
        """Cheap fingerprint of the on-disk checkpoint state.

        One ``(name, mtime_ns, size)`` triple per existing checkpoint
        file.  Snapshot watchers (:mod:`repro.serve`) poll this to
        detect both compactions *and* newly committed journal batches
        without parsing anything; any durable write changes the stamp.
        """
        parts: List[Tuple[str, int, int]] = []
        for path in (self.snapshot_path, self.journal_path):
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            parts.append((path.name, stat.st_mtime_ns, stat.st_size))
        return tuple(parts)

    def load(self) -> JournalReplay:
        """Read back snapshot + journal, dropping stale/torn entries.

        Journal entries for batches the snapshot already covers are
        skipped (they survive a crash between snapshot and rotation);
        a torn final line — the classic power-cut artefact — ends the
        replay cleanly at the last intact record.
        """
        replay = JournalReplay()
        if self.snapshot_path.exists():
            with open(self.snapshot_path, encoding="utf-8") as fh:
                replay.snapshot = json.load(fh)
            version = replay.snapshot.get("v")
            if version != FORMAT_VERSION:
                raise ValueError(
                    f"snapshot format v{version} != v{FORMAT_VERSION}")
        floor = (int(replay.snapshot.get("cursor", 0))
                 if replay.snapshot is not None else 0)
        pending: Dict[int, List[Dict[str, Any]]] = {}
        if self.journal_path.exists():
            with open(self.journal_path, encoding="utf-8") as fh:
                for line in fh:
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        break  # torn tail after a crash mid-write
                    batch_id = int(entry.get("batch", -1))
                    if batch_id < floor:
                        continue  # compacted into the snapshot already
                    if entry.get("type") == "outcome":
                        pending.setdefault(batch_id, []).append(
                            entry["data"])
                    elif entry.get("type") == "commit":
                        replay.committed.append(
                            (batch_id, pending.pop(batch_id, [])))
                        replay.commits.append(
                            (batch_id, entry.get("metrics", {})))
        replay.partial = pending
        return replay
