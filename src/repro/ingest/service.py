"""The streaming ingestion service: incremental end-to-end measurement.

Replays a synthetic world as dated feed batches (:mod:`repro.ingest.feed`)
and maintains the full measurement state online: per-sample analysis,
the illicit-wallet exception, dropper-chain recovery, profit profiling,
proxy identification and campaign aggregation all advance batch by
batch, with the invariant that the state after the final batch **equals
the batch pipeline's output** on the same world (verified by the
equivalence test suite).

Cross-batch couplings the batch pipeline resolves with global passes
are handled by monotonicity:

* *wallet exception* — samples below the AV threshold stay ``pending``
  and are promoted the moment any batch confirms one of their wallets;
* *dropper chains* — links to samples that have not arrived yet go on a
  ``wanted`` list and are recovered on arrival;
* *proxies* — an IP established as a proxy retroactively links earlier
  records via the union-find's destination-IP index.

Every outcome is journaled to a :class:`~repro.ingest.checkpoint.
CheckpointStore` before the batch commits, so a SIGKILL at any point
loses at most the in-flight batch's uncommitted window — and resuming
with ``resume=True`` skips every already-committed batch and every
journaled hash of the in-flight one.
"""

import dataclasses
import datetime
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.aggregation import GroupingPolicy
from repro.core.enrichment import CampaignEnricher
from repro.core.pipeline import (
    MeasurementResult,
    PipelineStats,
    analyze_linked_sample,
    build_analysis_components,
    linked_hashes,
    proxy_candidate_ip,
)
from repro.core.profit import ProfitAnalyzer, WalletProfile
from repro.core.records import MinerRecord
from repro.core.sanity import SanityVerdict
from repro.corpus.model import SyntheticWorld
from repro.ingest.aggregator import IncrementalAggregator
from repro.ingest.checkpoint import CheckpointStore, JournalReplay
from repro.ingest.codec import (
    decode_date,
    decode_outcome,
    decode_record,
    decode_stats,
    decode_verdict,
    encode_date,
    encode_outcome,
    encode_record,
    encode_stats,
    encode_verdict,
)
from repro.ingest.feed import FeedBatch, FeedScheduler
from repro.perf.parallel import (
    AnalysisSpec,
    ParallelExtractionEngine,
    SampleOutcome,
)
from repro.perf.profiler import PipelineProfiler

_DEFAULT_ANALYSIS_DATE = datetime.date(2018, 9, 1)

#: stage-1 outcome kinds (everything else is a promotion or recovery).
_STAGE1_KINDS = frozenset({"nonexec", "deferred", "rejected", "miner"})


@dataclass
class BatchMetrics:
    """Per-batch ingestion telemetry (journaled with the commit)."""

    batch_id: int
    start: Optional[datetime.date]
    end: Optional[datetime.date]
    samples: int
    analyzed: int = 0          # freshly analysed (not replayed) samples
    admitted: int = 0          # records added to the measurement
    new_miners: int = 0
    promotions: int = 0        # wallet-exception promotions
    recovered: int = 0         # dropper-chain recoveries
    campaign_merges: int = 0   # union-find component merges
    new_wallets: int = 0       # newly profiled identifiers with activity
    profit_delta_xmr: float = 0.0
    wall_s: float = 0.0

    @property
    def samples_per_s(self) -> float:
        """Batch throughput over freshly analysed samples."""
        return self.analyzed / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> Dict:
        """JSON-safe dict for the journal's commit line."""
        out = self.__dict__.copy()
        out["start"] = encode_date(self.start)
        out["end"] = encode_date(self.end)
        return out

    @classmethod
    def from_json(cls, data: Dict) -> "BatchMetrics":
        """Inverse of :meth:`to_json`."""
        data = dict(data)
        data["start"] = decode_date(data.get("start"))
        data["end"] = decode_date(data.get("end"))
        return cls(**data)


@dataclass
class IngestionResult:
    """What one ingestion run (or resumption) produced."""

    result: MeasurementResult
    batches: List[BatchMetrics] = field(default_factory=list)
    #: batch index the run started at (0 = fresh, >0 = resumed)
    resumed_from: int = 0
    total_batches: int = 0


def diff_measurements(expected: MeasurementResult,
                      actual: MeasurementResult) -> List[str]:
    """Differences between two measurement results (empty = equal).

    The incremental-vs-batch acceptance check: compares record sets,
    verdicts, funnel stats, proxies, profiled wallets, the campaign
    partition, and per-campaign wallets + profit totals.  Campaign ids
    are canonical on both paths, so campaigns compare positionally.
    """
    diffs: List[str] = []
    expected_hashes = sorted(r.sha256 for r in expected.records)
    actual_hashes = sorted(r.sha256 for r in actual.records)
    if expected_hashes != actual_hashes:
        diffs.append(
            f"record sets differ ({len(expected_hashes)} vs "
            f"{len(actual_hashes)} records)")
    if expected.verdicts != actual.verdicts:
        changed = sum(
            1 for sha in expected.verdicts
            if actual.verdicts.get(sha) != expected.verdicts[sha])
        diffs.append(f"verdicts differ ({changed} changed)")
    if expected.stats != actual.stats:
        diffs.append("funnel stats differ")
    if expected.proxy_ips != actual.proxy_ips:
        diffs.append("proxy IP sets differ")
    if set(expected.profiles) != set(actual.profiles):
        diffs.append("profiled wallet sets differ")
    expected_partition = [tuple(c.sample_hashes)
                          for c in expected.campaigns]
    actual_partition = [tuple(c.sample_hashes) for c in actual.campaigns]
    if expected_partition != actual_partition:
        diffs.append(
            f"campaign partitions differ ({len(expected_partition)} vs "
            f"{len(actual_partition)} campaigns)")
        return diffs  # per-campaign comparison is meaningless now
    for mine, theirs in zip(expected.campaigns, actual.campaigns):
        if (mine.identifiers != theirs.identifiers
                or abs(mine.total_xmr - theirs.total_xmr) > 1e-9
                or abs(mine.total_usd - theirs.total_usd) > 1e-9
                or mine.pools_used != theirs.pools_used):
            diffs.append(f"campaign {mine.campaign_id} annotations differ")
    return diffs


class IngestionService:
    """Long-running incremental ingestion over a feed replay.

    ``fault_hook(point, batch_id)`` is a test seam called at the
    durability boundaries (``pre-commit`` / ``post-commit`` /
    ``pre-snapshot`` / ``post-snapshot``); raising from it simulates a
    crash at that exact point.
    """

    def __init__(self, world: SyntheticWorld, checkpoint_dir,
                 batch_days: int = 1,
                 policy: Optional[GroupingPolicy] = None,
                 positives_threshold: int = 10,
                 analysis_date: datetime.date = _DEFAULT_ANALYSIS_DATE,
                 use_ha_reports: bool = True,
                 workers: int = 1,
                 chunk_size: Optional[int] = None,
                 resume: bool = False,
                 snapshot_every: int = 8,
                 fsync: bool = True,
                 profiler: Optional[PipelineProfiler] = None,
                 fault_hook: Optional[Callable[[str, int], None]] = None,
                 record_store=None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.world = world
        self.workers = workers
        self.resume = resume
        self.snapshot_every = snapshot_every
        self.profiler = profiler or PipelineProfiler()
        self.scheduler = FeedScheduler(world, batch_days)
        self.store = CheckpointStore(checkpoint_dir, fsync=fsync)
        #: optional repro.scale.columnar.RecordStore (duck-typed to keep
        #: ingest free of a scale import); each batch's admitted records
        #: become one batch-aligned segment, written before the commit
        #: marker so a replayed batch finds its segment already present
        #: and skips it (the reprocessed records are deterministic).
        self.record_store = record_store
        self._chunk_size = chunk_size
        self._policy = policy or GroupingPolicy.full()
        self._fault = fault_hook or (lambda point, batch_id: None)
        self._spec = AnalysisSpec(
            positives_threshold=positives_threshold,
            analysis_date=analysis_date,
            use_ha_reports=use_ha_reports,
        )
        self._checker, self._engine = build_analysis_components(
            world, self._spec)
        self._profit = ProfitAnalyzer(world.pool_directory)
        self._reset_state()

    def _reset_state(self) -> None:
        self._stats = PipelineStats()
        self._records: Dict[str, MinerRecord] = {}
        self._verdicts: Dict[str, SanityVerdict] = {}
        self._confirmed: Set[str] = set()
        self._pending: Dict[str, int] = {}          # deferred sha -> index
        self._pending_ids: Dict[str, frozenset] = {}
        self._arrived: Dict[str, int] = {}
        self._wanted: Set[str] = set()              # linked, not arrived
        self._profiles: Dict[str, WalletProfile] = {}
        self._profiled: Set[str] = set()
        self._proxy_ips: Set[str] = set()
        self._agg = IncrementalAggregator(self.world.osint, self._policy)
        self._cursor = 0
        self._replayed_stage1: Set[str] = set()
        self._resume_frontier: List[str] = []
        self.batch_metrics: List[BatchMetrics] = []

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> IngestionResult:
        """Process every (remaining) batch, finalize, and report."""
        from repro.perf.scan import profiled_scan
        with profiled_scan(self.profiler):
            return self._run_batches()

    def _run_batches(self) -> IngestionResult:
        batches = self.scheduler.batches()
        resumed_from = 0
        if self.store.exists():
            if not self.resume:
                raise ValueError(
                    f"{self.store.directory} already holds checkpoint "
                    "state; pass resume=True or use a fresh directory")
            with self.profiler.stage("checkpoint restore"):
                self._restore(self.store.load(), batches)
            resumed_from = self._cursor
        try:
            with ParallelExtractionEngine(
                    self.world, self._spec, workers=self.workers,
                    local_components=(self._checker, self._engine),
                    chunk_size=self._chunk_size) as engine:
                for batch in batches[self._cursor:]:
                    self._ingest_batch(batch, engine)
            result = self.finalize()
        finally:
            self.store.close()
        return IngestionResult(result=result,
                               batches=list(self.batch_metrics),
                               resumed_from=resumed_from,
                               total_batches=len(batches))

    def _ingest_batch(self, batch: FeedBatch,
                      engine: ParallelExtractionEngine) -> None:
        t0 = time.perf_counter()
        samples = self.world.samples
        self._stats.collected += batch.num_samples
        arrived_now = []
        for index in batch.indices:
            sha = samples[index].sha256
            if sha not in self._arrived:
                arrived_now.append(sha)
            self._arrived[sha] = index
        new_records: List[str] = []
        frontier_seed = list(self._resume_frontier)
        self._resume_frontier = []

        # -- stage 1: sanity + extraction for this window's samples -----
        todo = [i for i in batch.indices
                if samples[i].sha256 not in self._replayed_stage1]
        self._replayed_stage1.clear()
        with self.profiler.stage("ingest: extraction", items=len(todo)):
            for outcome in engine.map_stage1(todo):
                self.store.append_outcome(batch.batch_id,
                                          encode_outcome(outcome))
                self._apply_outcome(outcome, new_records)
        miners_before_sweeps = sum(
            1 for sha in new_records if self._records[sha].is_miner)

        # -- wallet-exception promotions against the full confirmed set --
        promotions = self._promote_pending(batch, engine, new_records)

        # -- dropper-chain recovery over arrived samples ------------------
        recovered = self._recover(batch, frontier_seed, arrived_now,
                                  new_records)

        # -- profit profiling for identifiers first seen this batch ------
        new_wallets, profit_delta = self._profile_new_identifiers(
            new_records)

        # -- proxy identification + incremental aggregation ---------------
        merges = self._aggregate_new(new_records)

        metrics = BatchMetrics(
            batch_id=batch.batch_id, start=batch.start, end=batch.end,
            samples=batch.num_samples, analyzed=len(todo),
            admitted=len(new_records),
            new_miners=miners_before_sweeps, promotions=promotions,
            recovered=recovered, campaign_merges=merges,
            new_wallets=new_wallets, profit_delta_xmr=profit_delta,
            wall_s=time.perf_counter() - t0)
        self.batch_metrics.append(metrics)
        self.profiler.count("batches_committed")

        # -- durability boundary ------------------------------------------
        # journal-replayed admissions (frontier_seed) belong to this
        # batch too — a resumed in-flight batch must write the same
        # record set an uninterrupted run would have.
        segment_shas = list(dict.fromkeys(frontier_seed + new_records))
        if self.record_store is not None and segment_shas:
            name = f"batch-{batch.batch_id:06d}"
            if not self.record_store.has_segment(name):
                self.record_store.append_segment(
                    [self._records[sha] for sha in segment_shas], name=name)
        self._fault("pre-commit", batch.batch_id)
        self.store.commit_batch(batch.batch_id, metrics.to_json())
        self._fault("post-commit", batch.batch_id)
        self._cursor = batch.batch_id + 1
        if self._cursor % self.snapshot_every == 0:
            self._fault("pre-snapshot", batch.batch_id)
            with self.profiler.stage("ingest: snapshot"):
                self.store.write_snapshot(self._snapshot_state())
            self._fault("post-snapshot", batch.batch_id)

    # ------------------------------------------------------------------
    # per-batch stages
    # ------------------------------------------------------------------

    def _apply_outcome(self, outcome: SampleOutcome,
                       new_records: List[str]) -> None:
        """Fold one journaled/fresh outcome into the running state.

        Used identically by live processing and journal replay, so a
        resumed run walks the exact state trajectory of an uninterrupted
        one.
        """
        sha = outcome.sha256
        stats = self._stats
        if outcome.kind == "nonexec":
            self._verdicts[sha] = outcome.verdict
        elif outcome.kind == "deferred":
            stats.executables += 1
            self._pending[sha] = outcome.index
            quick = self._engine.extract_static_only(
                self.world.samples[outcome.index])
            self._pending_ids[sha] = frozenset(quick.identifiers)
        elif outcome.kind in ("rejected", "miner"):
            stats.executables += 1
            stats.malware += 1
            stats.sandbox_analyses += 1
            if outcome.has_network:
                stats.network_analyses += 1
            if outcome.used_static:
                stats.binary_analyses += 1
            self._verdicts[sha] = outcome.verdict
            if outcome.kind == "miner":
                self._confirmed.update(outcome.record.identifiers)
                if sha not in self._records:
                    self._records[sha] = outcome.record
                    new_records.append(sha)
        elif outcome.kind == "exception":
            stats.sandbox_analyses += 1
            stats.binary_analyses += 1
            stats.wallet_exception_hits += 1
            self._verdicts[sha] = outcome.verdict
            self._pending.pop(sha, None)
            self._pending_ids.pop(sha, None)
            if sha not in self._records:
                self._records[sha] = outcome.record
                new_records.append(sha)
        elif outcome.kind == "recovered":
            stats.sandbox_analyses += 1
            self._verdicts[sha] = outcome.verdict
            self._wanted.discard(sha)
            if sha not in self._records:
                self._records[sha] = outcome.record
                new_records.append(sha)
                self.profiler.count("ancillaries_recovered")
        # stage-2 "clean" sweeps are never journaled: a pending sample
        # stays pending until a later batch confirms one of its wallets.

    def _promote_pending(self, batch: FeedBatch,
                         engine: ParallelExtractionEngine,
                         new_records: List[str]) -> int:
        """Promote deferred samples whose wallets are now confirmed."""
        matches = sorted(
            (index, sha) for sha, index in self._pending.items()
            if self._pending_ids[sha] & self._confirmed)
        if not matches:
            return 0
        promotions = 0
        with self.profiler.stage("ingest: wallet sweep",
                                 items=len(matches)):
            sweep = engine.map_stage2([index for index, _ in matches],
                                      frozenset(self._confirmed))
            for outcome in sweep:
                if outcome.kind != "exception":
                    continue  # stays pending; may match a later batch
                self.store.append_outcome(batch.batch_id,
                                          encode_outcome(outcome))
                self._apply_outcome(outcome, new_records)
                promotions += 1
        return promotions

    def _recover(self, batch: FeedBatch, frontier_seed: List[str],
                 arrived_now: List[str],
                 new_records: List[str]) -> int:
        """Dropper-chain recovery restricted to arrived samples.

        The first wave examines (a) links of every record added this
        batch (plus journal-replayed ones on resume) and (b) samples an
        earlier batch wanted that arrived just now.  Links pointing at
        samples still missing from the feed go on the wanted list.
        """
        recovered = 0
        frontier = list(dict.fromkeys(frontier_seed + new_records))
        pending_wanted = sorted(self._wanted.intersection(arrived_now))
        with self.profiler.stage("ingest: recovery"):
            while frontier or pending_wanted:
                linked: Set[str] = set(pending_wanted)
                pending_wanted = []
                for sha in frontier:
                    linked.update(linked_hashes(self._records[sha],
                                                self.world.vt))
                frontier = []
                for sha in sorted(linked):
                    if sha in self._records:
                        self._wanted.discard(sha)
                        continue
                    if sha not in self._arrived:
                        if self.world.sample_by_hash(sha) is not None:
                            self._wanted.add(sha)
                        continue
                    self._wanted.discard(sha)
                    sample = self.world.samples[self._arrived[sha]]
                    if not self._checker.is_executable(sample.raw):
                        continue
                    if not self._checker.is_malware(sample.sha256):
                        continue
                    record, verdict = analyze_linked_sample(
                        sample, self._engine)
                    outcome = SampleOutcome(
                        index=self._arrived[sha], sha256=sha,
                        kind="recovered", verdict=verdict, record=record)
                    self.store.append_outcome(batch.batch_id,
                                              encode_outcome(outcome))
                    self._apply_outcome(outcome, new_records)
                    frontier.append(sha)
                    recovered += 1
        return recovered

    def _profile_new_identifiers(self,
                                 new_records: List[str]) -> tuple:
        """Poll pools for identifiers first extracted this batch."""
        fresh: List[str] = []
        for sha in new_records:
            for identifier in self._records[sha].identifiers:
                if identifier not in self._profiled:
                    self._profiled.add(identifier)
                    fresh.append(identifier)
        new_wallets = 0
        profit_delta = 0.0
        with self.profiler.stage("ingest: profit", items=len(fresh)):
            for identifier in sorted(fresh):
                profile = self._profit.profile_wallet(identifier)
                if profile.records:
                    self._profiles[identifier] = profile
                    new_wallets += 1
                    profit_delta += profile.total_paid
        return new_wallets, profit_delta

    def _aggregate_new(self, new_records: List[str]) -> int:
        """Feed this batch's records (and proxies) to the union-find."""
        with self.profiler.stage("ingest: aggregation",
                                 items=len(new_records)):
            merges = 0
            for sha in new_records:
                merges += self._agg.add_record(self._records[sha])
            new_proxies = set()
            for sha in new_records:
                record = self._records[sha]
                candidate = proxy_candidate_ip(record)
                if candidate is None or candidate in self._proxy_ips:
                    continue
                if any(identifier in self._profiles
                       for identifier in record.identifiers):
                    new_proxies.add(candidate)
            self._proxy_ips |= new_proxies
            merges += self._agg.add_proxy_ips(new_proxies)
        return merges

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------

    def finalize(self) -> MeasurementResult:
        """Close out the run: final verdicts, enrichment, snapshot.

        Idempotent — resuming an already-complete checkpoint re-derives
        the same result without reprocessing any sample.
        """
        # deferred samples nothing ever vouched for: below AV threshold
        for sha in sorted(self._pending, key=self._pending.get):
            self._verdicts[sha] = SanityVerdict(
                sha, is_executable=True, is_malware=False,
                reasons="below AV threshold")
        result = self._materialize_result(self._verdicts, self._stats)
        with self.profiler.stage("ingest: snapshot"):
            self.store.write_snapshot(
                self._snapshot_state(finalized=True))
        return result

    def _materialize_result(self, verdicts: Dict[str, SanityVerdict],
                            stats: PipelineStats) -> MeasurementResult:
        """Funnel accounting + campaigns + enrichment over the records.

        ``stats`` is mutated (miners/ancillaries/by_source recomputed);
        callers that must not disturb the running state pass a copy.
        """
        prof = self.profiler
        kept = list(self._records.values())
        with prof.stage("ingest: funnel accounting", items=len(kept)):
            stats.miners = sum(1 for r in kept if r.is_miner)
            stats.ancillaries = len(kept) - stats.miners
            stats.by_source = {}
            for record in kept:
                sample = self.world.sample_by_hash(record.sha256)
                if sample is not None:
                    for feed in sample.sources:
                        stats.by_source[feed] = \
                            stats.by_source.get(feed, 0) + 1
        with prof.stage("ingest: materialise campaigns"):
            campaigns = self._agg.campaigns()
        with prof.stage("ingest: enrichment", items=len(campaigns)):
            enricher = CampaignEnricher(
                self.world.vt, self.world.stock_catalog,
                self.world.sample_by_hash)
            enricher.enrich_all(campaigns, self._profiles)
        return MeasurementResult(
            records=kept, campaigns=campaigns,
            profiles=dict(self._profiles),
            verdicts=dict(verdicts),
            stats=stats, proxy_ips=set(self._proxy_ips))

    # ------------------------------------------------------------------
    # read-only state access (serving layer)
    # ------------------------------------------------------------------

    def restore_state(self) -> int:
        """Rebuild in-memory state from the checkpoint, process nothing.

        The :mod:`repro.serve` index builder uses this to load whatever
        state a (possibly still-running) ingestion has made durable —
        snapshot plus committed and in-flight journal batches.  Returns
        the cursor: the first batch the checkpoint does *not* cover.
        """
        with self.profiler.stage("checkpoint restore"):
            self._restore(self.store.load(), self.scheduler.batches())
        return self._cursor

    def current_result(self) -> MeasurementResult:
        """Materialise the state ingested so far, without finalizing.

        Unlike :meth:`finalize` this neither writes a snapshot nor
        mutates the running state: pending verdicts and funnel stats
        are completed on copies, and campaigns are freshly built (the
        aggregator's materialisation is non-destructive).  After the
        final batch the result equals :meth:`finalize`'s.
        """
        verdicts = dict(self._verdicts)
        for sha in sorted(self._pending, key=self._pending.get):
            verdicts[sha] = SanityVerdict(
                sha, is_executable=True, is_malware=False,
                reasons="below AV threshold")
        stats = dataclasses.replace(self._stats, by_source={})
        return self._materialize_result(verdicts, stats)

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------

    def _snapshot_state(self, finalized: bool = False) -> Dict:
        return {
            "cursor": self._cursor,
            "finalized": finalized,
            "batch_days": self.scheduler.batch_days,
            "seed": self.world.config.seed,
            "scale": self.world.config.scale,
            # sorted by hash so the snapshot is a pure function of the
            # state, not of arrival order (two runs reaching the same
            # state write byte-identical snapshots)
            "records": [encode_record(self._records[sha])
                        for sha in sorted(self._records)],
            "verdicts": [encode_verdict(self._verdicts[sha])
                         for sha in sorted(self._verdicts)],
            "stats": encode_stats(self._stats),
            "confirmed": sorted(self._confirmed),
            "pending": sorted(self._pending.items(),
                              key=lambda kv: kv[1]),
            "batches": [m.to_json() for m in self.batch_metrics],
        }

    def _restore(self, replay: JournalReplay,
                 batches: List[FeedBatch]) -> None:
        """Rebuild the full in-memory state from snapshot + journal."""
        self._reset_state()
        snapshot = replay.snapshot
        if snapshot is not None:
            if (snapshot.get("batch_days") != self.scheduler.batch_days
                    or snapshot.get("seed") != self.world.config.seed
                    or snapshot.get("scale") != self.world.config.scale):
                raise ValueError(
                    "checkpoint was written for a different feed plan "
                    f"(seed={snapshot.get('seed')} "
                    f"scale={snapshot.get('scale')} "
                    f"batch_days={snapshot.get('batch_days')}); refusing "
                    "to resume")
            for data in snapshot["records"]:
                record = decode_record(data)
                self._records[record.sha256] = record
            for data in snapshot["verdicts"]:
                verdict = decode_verdict(data)
                self._verdicts[verdict.sha256] = verdict
            self._stats = decode_stats(snapshot["stats"])
            self._confirmed = set(snapshot["confirmed"])
            for sha, index in snapshot["pending"]:
                self._pending[sha] = index
                quick = self._engine.extract_static_only(
                    self.world.samples[index])
                self._pending_ids[sha] = frozenset(quick.identifiers)
            self.batch_metrics = [BatchMetrics.from_json(m)
                                  for m in snapshot["batches"]]
            self._cursor = int(snapshot["cursor"])
        # samples delivered by every batch up to the cursor
        for batch in batches[:self._cursor]:
            for index in batch.indices:
                self._arrived[self.world.samples[index].sha256] = index
        # committed batches newer than the snapshot
        sink: List[str] = []
        for batch_id, outcomes in replay.committed:
            batch = batches[batch_id]
            self._stats.collected += batch.num_samples
            for index in batch.indices:
                self._arrived[self.world.samples[index].sha256] = index
            for data in outcomes:
                self._apply_outcome(decode_outcome(data), sink)
            self._cursor = batch_id + 1
        for batch_id, metrics in replay.commits:
            self.batch_metrics.append(BatchMetrics.from_json(metrics))
        # the in-flight batch: reuse journaled hashes, reprocess the rest
        for data in replay.partial.get(self._cursor, []):
            outcome = decode_outcome(data)
            if outcome.kind in _STAGE1_KINDS:
                self._replayed_stage1.add(outcome.sha256)
            before = len(sink)
            self._apply_outcome(outcome, sink)
            if len(sink) > before:
                # replayed records still owe their recovery examination
                self._resume_frontier.append(outcome.sha256)
        # derived state is recomputed, not persisted: deterministic
        self._rebuild_wanted()
        self._rebuild_derived()

    def _rebuild_wanted(self) -> None:
        """Re-derive the wanted list from the restored record set.

        A linked hash is wanted iff some accepted record links to it,
        it was not admitted, and its sample has not arrived yet (an
        arrived-but-unadmitted link already failed its deterministic
        executable/malware checks and never qualifies later).  Being a
        pure function of the records, this needs no journaling.
        """
        self._wanted = set()
        for record in self._records.values():
            for sha in linked_hashes(record, self.world.vt):
                if sha in self._records or sha in self._arrived:
                    continue
                if self.world.sample_by_hash(sha) is not None:
                    self._wanted.add(sha)

    def _rebuild_derived(self) -> None:
        """Re-derive profiles, proxies and the union-find from records.

        Every derivation is a pure function of the (restored) record
        set, so this lands on the same state an uninterrupted run would
        hold — cheaper and safer than persisting pool responses.
        """
        for record in self._records.values():
            for identifier in record.identifiers:
                if identifier in self._profiled:
                    continue
                self._profiled.add(identifier)
                profile = self._profit.profile_wallet(identifier)
                if profile.records:
                    self._profiles[identifier] = profile
        proxies = set()
        for record in self._records.values():
            candidate = proxy_candidate_ip(record)
            if candidate is None:
                continue
            if any(identifier in self._profiles
                   for identifier in record.identifiers):
                proxies.add(candidate)
        self._proxy_ips = proxies
        for record in self._records.values():
            self._agg.add_record(record)
        self._agg.add_proxy_ips(proxies)
