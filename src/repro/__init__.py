"""repro — reproduction of the IMC 2019 crypto-mining-malware study.

Top-level convenience API::

    import repro

    world = repro.generate_world(repro.scenario("smoke"))
    result = repro.MeasurementPipeline(world).run()

Subpackages are grouped by role:

* ``repro.core`` — the paper's measurement pipeline;
* ``repro.analysis`` / ``repro.reporting`` — exhibits and renderers;
* ``repro.corpus`` — the synthetic ecosystem generator;
* ``repro.defense`` / ``repro.baselines`` / ``repro.botnet`` —
  countermeasures, prior-work baselines and operator economics;
* the remaining packages are the simulated substrates (pools, stratum,
  chain, sandbox, binfmt, fuzzyhash, yarm, intel, osint, netsim,
  forums, market, wallets).
"""

__version__ = "1.0.0"

from repro.core.pipeline import MeasurementPipeline, MeasurementResult
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig, SyntheticWorld
from repro.corpus.scenarios import available_scenarios, scenario

__all__ = [
    "__version__",
    "MeasurementPipeline",
    "MeasurementResult",
    "generate_world",
    "ScenarioConfig",
    "SyntheticWorld",
    "available_scenarios",
    "scenario",
]
