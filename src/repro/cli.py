"""Command-line interface.

Subcommands::

    python -m repro.cli measure   --scale 0.01 --seed 2019 [--export DIR]
    python -m repro.cli exhibits  --scale 0.01 --seed 2019
    python -m repro.cli casestudy --name Freebuf
    python -m repro.cli defense   --scale 0.01
    python -m repro.cli ingest    --checkpoint DIR --batch-days 7 [--resume]
    python -m repro.cli status    --checkpoint DIR
    python -m repro.cli scale     --scale 0.55 [--store DIR] [--shards K]
    python -m repro.cli serve     [--checkpoint DIR | --store DIR]
                                  [--port 8742] [--api-key KEY --rate 50]
                                  [--workers N]
    python -m repro.cli bench     [--suite scale|pipeline|scan|serve|
                                   ingest|all] [--workers-list 1,2,4]
    python -m repro.cli lint      [--strict] [--update-baseline]
                                  [--changed] [--graph] [--workers N]
                                  [--json | --sarif]

``measure`` runs the full pipeline and prints the funnel; ``exhibits``
renders the main paper tables; ``casestudy`` deep-dives one of the §V
campaigns; ``defense`` evaluates the §VI countermeasures; ``ingest``
replays the corpus as dated feed batches with durable checkpoints
(interrupt it freely, re-run with ``--resume``); ``status`` inspects a
checkpoint directory without touching the corpus; ``scale`` runs the
out-of-core streaming pipeline (:mod:`repro.scale`) that never holds
the whole world in memory; ``serve`` starts the threat-intel HTTP API
(:mod:`repro.serve`) over a checkpoint directory (hot-swapping as the
checkpoint advances), a columnar record store, or a fresh pipeline
run — ``--workers N`` forks an ``SO_REUSEPORT`` fleet of N serving
processes sharing one pre-fork index; ``bench`` emits the
``BENCH_*.json`` scaling/stage benchmarks plus per-run
``BENCH_history/`` entries; ``lint`` runs the
reprolint invariant checks (see ``docs/static-analysis.md``) and fails
on findings the committed baseline does not accept — ``--changed``
narrows reporting to the git diff, ``--graph`` dumps the resolved
call graph and stage-contract table, ``--workers`` fans the
per-module work over a process pool.
"""

import argparse
import sys
from typing import Optional

from repro.analysis import (
    headline_monero_fraction,
    table4_currencies,
    table7_pool_popularity,
    table8_top_campaigns,
    table11_infrastructure,
)
from repro.analysis.validation import aggregation_quality
from repro.core.pipeline import MeasurementPipeline
from repro.corpus.generator import generate_world
from repro.corpus.model import ScenarioConfig
from repro.reporting.render import (
    render_table4,
    render_table7,
    render_table8,
    render_table11,
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


#: memoised worlds by (seed, scale) — corpus generation dominates CLI
#: start-up, and commands like ``ingest --verify`` need the same world
#: twice (once streamed, once batch-measured).
_WORLD_CACHE = {}


def _get_world(seed: int, scale: float):
    """Build (or reuse) the synthetic world for one (seed, scale)."""
    key = (seed, scale)
    if key not in _WORLD_CACHE:
        _WORLD_CACHE[key] = generate_world(
            ScenarioConfig(seed=seed, scale=scale))
    return _WORLD_CACHE[key]


def _print_runtime_stats() -> None:
    """Cache + scan-kernel counters, appended to --profile output."""
    from repro.perf.cache import render_cache_table
    from repro.perf.scan import render_scan_stats
    print(render_cache_table(), file=sys.stderr)
    print(render_scan_stats(), file=sys.stderr)


def _build_world_and_result(args):
    world = _get_world(args.seed, args.scale)
    pipeline = MeasurementPipeline(world,
                                   workers=getattr(args, "workers", 1))
    result = pipeline.run()
    if getattr(args, "profile", False):
        print(pipeline.profiler.render_table(), file=sys.stderr)
        _print_runtime_stats()
    return world, result


def cmd_measure(args) -> int:
    """Run the full pipeline and print the sample funnel."""
    world, result = _build_world_and_result(args)
    stats = result.stats
    print(f"collected:   {stats.collected}")
    print(f"executables: {stats.executables}")
    print(f"malware:     {stats.malware}")
    print(f"miners:      {stats.miners}")
    print(f"ancillaries: {stats.ancillaries}")
    print(f"campaigns:   {len(result.campaigns)}")
    headline = headline_monero_fraction(result)
    print(f"illicit XMR: {headline['total_xmr']:.0f} "
          f"({headline['fraction']*100:.2f}% of supply, "
          f"{headline['total_usd']/1e6:.1f}M USD)")
    scores = aggregation_quality(world, result)
    print(f"aggregation: P={scores.precision:.3f} R={scores.recall:.3f}")
    if args.export:
        from repro.reporting.dataset_export import export_all
        from repro.reporting.figure_export import export_all_figures
        counts = export_all(result, args.export)
        if world.forum_corpus is not None:
            counts.update(export_all_figures(result, world.forum_corpus,
                                             args.export))
        print(f"exported to {args.export}: {counts}")
    return 0


def cmd_exhibits(args) -> int:
    """Render the main paper tables for one measured world."""
    _, result = _build_world_and_result(args)
    print(render_table4(table4_currencies(result)))
    print()
    print(render_table7(table7_pool_popularity(result)))
    print()
    print(render_table8(table8_top_campaigns(result)))
    print()
    print(render_table11(table11_infrastructure(result)))
    return 0


def cmd_casestudy(args) -> int:
    """Deep-dive one of the SV case-study campaigns."""
    from repro.analysis import (
        fig6_campaign_structure,
        fig7_payment_timeline,
    )
    world, result = _build_world_and_result(args)
    truth = next((c for c in world.ground_truth if c.label == args.name),
                 None)
    if truth is None:
        print(f"unknown case study: {args.name} "
              "(expected Freebuf or USA-138)", file=sys.stderr)
        return 1
    campaign = result.campaign_for_wallet(truth.identifiers[0])
    if campaign is None:
        print("case-study campaign not recovered", file=sys.stderr)
        return 1
    structure = fig6_campaign_structure(result, campaign)
    for key, value in structure.items():
        print(f"{key}: {value}")
    timeline = fig7_payment_timeline(result, campaign)
    print(f"wallets with payments: {len(timeline)}")
    return 0


def cmd_defense(args) -> int:
    """Evaluate the SVI countermeasures on a measured world."""
    from repro.defense.blacklist import BlacklistDefense
    from repro.defense.fork_policy import compare_cadences
    from repro.defense.intervention import WalletReportingCampaign
    world, result = _build_world_and_result(args)
    blacklist = BlacklistDefense(world.pool_directory).evaluate(
        result.miner_records(), result.proxy_ips)
    print(f"blacklist: blocked {blacklist.blocked}/"
          f"{blacklist.total_miners} "
          f"(cname evasions: {blacklist.evaded_by_cname}, "
          f"proxy: {blacklist.evaded_by_proxy})")
    report = WalletReportingCampaign(world.pool_directory).run(result)
    print(f"intervention: {report.wallets_banned}/"
          f"{report.wallets_reported} wallets banned; "
          f"disrupted {report.disrupted_run_rate:.1f} XMR/day")
    none, historical, quarterly = compare_cadences(world.ground_truth)
    print(f"fork policy: historical retains "
          f"{historical.retained_fraction*100:.0f}% of mining-days, "
          f"quarterly retains {quarterly.retained_fraction*100:.0f}%")
    return 0


def cmd_report(args) -> int:
    """Write markdown dossiers for the top campaigns."""
    from pathlib import Path

    from repro.reporting.campaign_report import (
        render_top_campaign_reports,
    )
    _, result = _build_world_and_result(args)
    bundle = render_top_campaign_reports(result, top=args.top)
    if args.output:
        Path(args.output).write_text(bundle)
        print(f"wrote {args.top} campaign dossiers to {args.output}")
    else:
        print(bundle)
    return 0


def cmd_fullreport(args) -> int:
    """Write the complete measurement report (all exhibits)."""
    from pathlib import Path

    from repro.reporting.summary_report import render_measurement_report
    world, result = _build_world_and_result(args)
    report = render_measurement_report(world, result)
    if args.output:
        Path(args.output).write_text(report)
        print(f"wrote measurement report to {args.output} "
              f"({len(report.splitlines())} lines)")
    else:
        print(report)
    return 0


def cmd_ingest(args) -> int:
    """Stream the corpus through the checkpointed ingestion service."""
    from repro.ingest import IngestionService
    from repro.ingest.service import diff_measurements
    from repro.reporting.ingest_report import (
        render_batch_metrics,
        render_ingest_summary,
    )
    world = _get_world(args.seed, args.scale)
    service = IngestionService(
        world, args.checkpoint, batch_days=args.batch_days,
        workers=args.workers, resume=args.resume,
        snapshot_every=args.snapshot_every)
    try:
        ingest = service.run()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(render_batch_metrics(ingest.batches))
    print()
    print(render_ingest_summary(ingest))
    if args.profile:
        print(service.profiler.render_table(), file=sys.stderr)
        _print_runtime_stats()
    if args.verify:
        pipeline = MeasurementPipeline(world, workers=args.workers)
        diffs = diff_measurements(pipeline.run(), ingest.result)
        if diffs:
            print("verify: MISMATCH against the batch pipeline:",
                  file=sys.stderr)
            for diff in diffs:
                print(f"  - {diff}", file=sys.stderr)
            return 1
        print("verify: incremental result equals the batch pipeline")
    return 0


def cmd_scale(args) -> int:
    """Run the out-of-core streaming pipeline and print its funnel."""
    from repro.common.memory import peak_rss_mib, rss_supported
    from repro.scale.columnar import RecordStore
    from repro.scale.pipeline import ScalePipeline
    from repro.scale.stream import StreamingCorpus
    config = ScenarioConfig(seed=args.seed, scale=args.scale,
                            mining_stride_days=args.stride_days)
    corpus = StreamingCorpus(config, chunk_samples=args.chunk_samples,
                             keep_sample_hashes=False)
    store = RecordStore(args.store) if args.store else None
    pipeline = ScalePipeline(corpus, store=store, workers=args.workers,
                             num_shards=args.shards,
                             prefetch=args.prefetch)
    result = pipeline.run()
    stats = result.stats
    print(f"collected:   {stats.collected}")
    print(f"executables: {stats.executables}")
    print(f"malware:     {stats.malware}")
    print(f"miners:      {stats.miners}")
    print(f"ancillaries: {stats.ancillaries}")
    print(f"campaigns:   {len(result.campaigns)}")
    print(f"segments:    {result.store.num_segments} "
          f"({len(result.store)} records)")
    print(f"spilled:     {result.deferred_spilled} deferred, "
          f"{result.rejected_spilled} rejected, "
          f"{result.recovered} recovered "
          f"({result.spill_bytes / (1024 * 1024):.1f} MiB on disk)")
    if rss_supported():
        print(f"peak RSS:    {peak_rss_mib():.1f} MiB")
    if args.store:
        print(f"store:       {args.store}")
    return 0


async def _serve_main(service, source, host: str, port: int,
                      poll_interval: float) -> int:
    """Run the HTTP front end (+ snapshot watcher) until interrupted."""
    import asyncio

    from repro.serve.http import HttpServer
    from repro.serve.watcher import SnapshotWatcher
    server = HttpServer(service.handle, host=host, port=port)
    await server.start()
    print(f"serving on http://{host}:{server.port}", file=sys.stderr)
    watcher_task = None
    if source is not None:
        watcher = SnapshotWatcher(service, source,
                                  interval_s=poll_interval)
        watcher.prime()
        watcher_task = asyncio.ensure_future(watcher.run_forever())
        print(f"watching {source.store.directory} every "
              f"{poll_interval}s", file=sys.stderr)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        if watcher_task is not None:
            watcher_task.cancel()
        await server.stop()
    return 0


def cmd_serve(args) -> int:
    """Start the threat-intel HTTP API over an index source."""
    import asyncio

    from repro.serve.app import IntelService
    from repro.serve.auth import ApiKeyRegistry
    from repro.serve.index import build_index
    from repro.serve.snapshot import (
        CheckpointIndexSource,
        checkpoint_plan,
        result_from_store,
    )

    registry = ApiKeyRegistry()
    if args.api_key:
        for key in args.api_key:
            registry.add(key, rate=args.rate, burst=args.burst)
    else:
        issued = registry.generate(name="default", rate=args.rate,
                                   burst=args.burst)
        print(f"api key (generated): {issued.key}", file=sys.stderr)

    source = None
    if args.checkpoint:
        plan = checkpoint_plan(args.checkpoint)
        seed = (plan["seed"] if plan and plan.get("seed") is not None
                else args.seed)
        scale = (plan["scale"]
                 if plan and plan.get("scale") is not None
                 else args.scale)
        world = _get_world(seed, scale)
        source = CheckpointIndexSource(world, args.checkpoint,
                                       batch_days=args.batch_days)
        if source.stamp() is None:
            print(f"no checkpoint state under {args.checkpoint}",
                  file=sys.stderr)
            return 1
        index = source.build(1)
    elif args.store:
        from repro.scale.columnar import RecordStore
        world = _get_world(args.seed, args.scale)
        result = result_from_store(world, RecordStore(args.store),
                                   workers=args.pipeline_workers)
        index = build_index(result, generation=1,
                            source=f"store:{args.store}")
    else:
        world = _get_world(args.seed, args.scale)
        pipeline = MeasurementPipeline(world,
                                       workers=args.pipeline_workers)
        result = pipeline.run()
        index = build_index(
            result, generation=1,
            source=f"pipeline seed={args.seed} scale={args.scale}")
    counts = index.counts()
    print(f"index generation {index.generation} from {index.source}: "
          f"{counts['hashes']} hashes, {counts['wallets']} wallets, "
          f"{counts['campaigns']} campaigns, {counts['domains']} "
          f"domains", file=sys.stderr)
    service = IntelService(index, registry)
    if args.workers > 1:
        return _serve_fleet(service, args)
    try:
        return asyncio.run(_serve_main(service, source, args.host,
                                       args.port, args.poll_interval))
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
        return 0


def _serve_fleet(service, args) -> int:
    """Run the multi-process fleet until interrupted (frozen index)."""
    import time as _time

    from repro.serve.fleet import ServerFleet
    if args.checkpoint:
        print("--workers > 1 serves a frozen index; checkpoint "
              "watching disabled", file=sys.stderr)
    with ServerFleet(service.handle, host=args.host, port=args.port,
                     workers=args.workers) as fleet:
        print(f"serving on http://{fleet.host}:{fleet.port} with "
              f"{args.workers} workers (pids "
              f"{' '.join(str(p) for p in fleet.pids)})",
              file=sys.stderr)
        try:
            while fleet.alive():
                _time.sleep(1.0)
            print("all workers exited", file=sys.stderr)
        except KeyboardInterrupt:
            print("interrupted; shutting down", file=sys.stderr)
    return 0


def cmd_bench(args) -> int:
    """Run the benchmark harness (see ``benchmarks/harness.py``)."""
    from repro.scale import bench
    argv = ["--suite", args.suite, "--seed", str(args.seed),
            "--workers", str(args.workers),
            "--prefetch", str(args.prefetch),
            "--chunk-samples", str(args.chunk_samples),
            "--shards", str(args.shards),
            "--iterations", str(args.iterations),
            "--duration", str(args.duration),
            "--concurrency", str(args.concurrency),
            "--batch-days", str(args.batch_days),
            "--out-dir", args.out_dir]
    if args.scales:
        argv += ["--scales", args.scales]
    if args.workers_list:
        argv += ["--workers-list", args.workers_list]
    return bench.main(argv)


def cmd_lint(args) -> int:
    """Run reprolint over the source tree and gate on the baseline."""
    import json
    from pathlib import Path

    from repro.lint import Baseline, lint_source_tree
    root = Path(args.root) if args.root else None
    baseline = Path(args.baseline) if args.baseline else None
    if args.graph:
        from repro.lint import build_project_index
        from repro.lint.callgraph import (
            render_concurrency,
            render_contracts,
            render_graph,
        )
        index = build_project_index(root)
        print(render_graph(index), end="")
        print(render_contracts(index), end="")
        print(render_concurrency(index), end="")
        return 0
    run = lint_source_tree(root=root, baseline_path=baseline,
                           workers=args.workers,
                           changed_only=args.changed)
    report = run.report
    if args.changed and run.focus is not None:
        print(f"reprolint --changed: {len(run.focus)} file(s) since "
              "the merge base", file=sys.stderr)
    if args.update_baseline:
        target = (baseline if baseline is not None
                  else run.baseline.path)
        if target is None:
            print("no baseline path to update (pass --baseline)",
                  file=sys.stderr)
            return 2
        fresh = Baseline.from_report(report, notes=run.baseline.notes)
        fresh.write(target)
        print(f"baseline updated: {target} "
              f"({len(fresh.entries)} entries)")
        return 0
    if args.sarif:
        from repro.lint.sarif import render_sarif
        print(render_sarif(report, run.regressions))
        return 0 if run.ok(strict=args.strict) else 1
    if args.json:
        print(json.dumps({
            "modules": report.modules_scanned,
            "findings": [f.__dict__ for f in report.findings],
            "regressions": [f.__dict__ for f in run.regressions],
            "expired": [{"rule": k[0], "path": k[1],
                         "granted": granted, "used": used}
                        for k, granted, used in run.expired],
            "suppressed": len(report.suppressed),
        }, indent=2))
        return 0 if run.ok(strict=args.strict) else 1
    for error in report.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    for finding in run.regressions:
        print(finding.render())
    baselined = len(report.findings) - len(run.regressions)
    print(f"reprolint: {report.modules_scanned} modules, "
          f"{len(report.findings)} findings "
          f"({len(run.regressions)} new, {baselined} baselined, "
          f"{len(report.suppressed)} pragma-suppressed)")
    if run.expired:
        for (rule, path), granted, used in run.expired:
            print(f"stale baseline grant: {rule} {path} "
                  f"(granted {granted}, used {used})",
                  file=sys.stderr)
        if args.strict:
            print("strict mode: prune the stale grants with "
                  "--update-baseline", file=sys.stderr)
    return 0 if run.ok(strict=args.strict) else 1


def cmd_status(args) -> int:
    """Inspect a checkpoint directory without touching the corpus."""
    from pathlib import Path

    from repro.ingest import CheckpointStore
    from repro.reporting.ingest_report import render_checkpoint_status
    if not Path(args.checkpoint).is_dir():
        print(f"no checkpoint directory at {args.checkpoint}",
              file=sys.stderr)
        return 1
    store = CheckpointStore(args.checkpoint, fsync=False)
    if not store.exists():
        print(f"no checkpoint state under {args.checkpoint}",
              file=sys.stderr)
        return 1
    print(render_checkpoint_status(store.load()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Crypto-mining malware ecosystem measurement "
                    "(IMC 2019 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, func in [("measure", cmd_measure),
                       ("exhibits", cmd_exhibits),
                       ("casestudy", cmd_casestudy),
                       ("defense", cmd_defense),
                       ("report", cmd_report),
                       ("fullreport", cmd_fullreport),
                       ("ingest", cmd_ingest)]:
        p = sub.add_parser(name)
        p.add_argument("--scale", type=float, default=0.01)
        p.add_argument("--seed", type=int, default=2019)
        p.add_argument("--workers", type=_positive_int, default=1,
                       help="extraction worker processes (1 = serial)")
        p.add_argument("--profile", action="store_true",
                       help="print per-stage pipeline timings to stderr")
        p.set_defaults(func=func)
        if name == "measure":
            p.add_argument("--export", type=str, default=None,
                           help="directory for the dataset bundle")
        if name == "casestudy":
            p.add_argument("--name", type=str, default="Freebuf")
        if name == "report":
            p.add_argument("--top", type=int, default=3)
            p.add_argument("--output", type=str, default=None)
        if name == "fullreport":
            p.add_argument("--output", type=str, default=None)
        if name == "ingest":
            p.add_argument("--checkpoint", type=str, required=True,
                           help="durable checkpoint directory")
            p.add_argument("--batch-days", type=_positive_int, default=1,
                           help="simulated days per feed batch")
            p.add_argument("--resume", action="store_true",
                           help="continue from the checkpoint's cursor")
            p.add_argument("--snapshot-every", type=_positive_int,
                           default=8,
                           help="compact the journal every N batches")
            p.add_argument("--verify", action="store_true",
                           help="also run the batch pipeline and assert "
                                "the results are identical")
    scale = sub.add_parser(
        "scale",
        help="out-of-core streaming pipeline (repro.scale)")
    scale.add_argument("--scale", type=float, default=0.055)
    scale.add_argument("--seed", type=int, default=2019)
    scale.add_argument("--workers", type=_positive_int, default=1)
    scale.add_argument("--chunk-samples", type=_positive_int,
                       default=4096, help="samples per streamed chunk")
    scale.add_argument("--shards", type=_positive_int, default=8,
                       help="union-find shards for aggregation")
    scale.add_argument("--prefetch", type=int, default=2,
                       help="chunk prefetch depth (0 = synchronous)")
    scale.add_argument("--stride-days", type=_positive_int, default=30,
                       help="mining-driver stride (coarser = faster)")
    scale.add_argument("--store", type=str, default=None,
                       help="persist the columnar record store here "
                            "(default: a temp dir, deleted on exit)")
    scale.set_defaults(func=cmd_scale)
    serve = sub.add_parser(
        "serve",
        help="threat-intel HTTP API over a checkpoint / store / "
             "pipeline run (repro.serve)")
    serve.add_argument("--checkpoint", type=str, default=None,
                       help="checkpoint directory to index and watch "
                            "for new snapshots")
    serve.add_argument("--store", type=str, default=None,
                       help="columnar record-store directory to index")
    serve.add_argument("--scale", type=float, default=0.01,
                       help="world scale (overridden by the "
                            "checkpoint's own plan when present)")
    serve.add_argument("--seed", type=int, default=2019)
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="serving processes; > 1 forks a "
                            "SO_REUSEPORT fleet sharing one pre-fork "
                            "index (frozen: no checkpoint watching)")
    serve.add_argument("--pipeline-workers", type=_positive_int,
                       default=1,
                       help="worker processes for building the index "
                            "source (pipeline extraction / store "
                            "aggregation shards)")
    serve.add_argument("--batch-days", type=_positive_int, default=None,
                       help="feed plan override for journal-only "
                            "checkpoints")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8742,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--api-key", action="append", default=None,
                       help="accept this API key (repeatable; default: "
                            "generate one and print it)")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-key sustained requests/second "
                            "(0 = unlimited)")
    serve.add_argument("--burst", type=_positive_int, default=10,
                       help="per-key burst ceiling")
    serve.add_argument("--poll-interval", type=float, default=2.0,
                       help="checkpoint poll period for hot swap")
    serve.set_defaults(func=cmd_serve)
    bench = sub.add_parser(
        "bench",
        help="benchmark harness; writes BENCH_<suite>.json plus a "
             "BENCH_history/ entry per run (suites: scale, pipeline, "
             "scan, serve, ingest)")
    bench.add_argument("--suite",
                       choices=["scale", "pipeline", "scan", "serve",
                                "ingest", "all"],
                       default="all")
    bench.add_argument("--scales", type=str, default=None,
                       help="comma-separated scale factors")
    bench.add_argument("--seed", type=int, default=2019)
    bench.add_argument("--workers", type=_positive_int, default=1)
    bench.add_argument("--workers-list", type=str, default=None,
                       help="comma-separated worker counts for the "
                            "scale / serve lanes (e.g. 1,2,4)")
    bench.add_argument("--prefetch", type=int, default=2,
                       help="chunk prefetch depth for the scale lane")
    bench.add_argument("--batch-days", type=_positive_int, default=30,
                       help="feed-batch size for the ingest lane")
    bench.add_argument("--chunk-samples", type=_positive_int,
                       default=4096)
    bench.add_argument("--shards", type=_positive_int, default=8)
    bench.add_argument("--iterations", type=_positive_int, default=3,
                       help="best-of iterations for the scan lane")
    bench.add_argument("--duration", type=float, default=8.0,
                       help="sustained-load seconds for the serve lane")
    bench.add_argument("--concurrency", type=_positive_int, default=8,
                       help="client threads for the serve lane")
    bench.add_argument("--out-dir", type=str, default=".")
    bench.set_defaults(func=cmd_bench)
    status = sub.add_parser("status")
    status.add_argument("--checkpoint", type=str, required=True,
                        help="checkpoint directory to inspect")
    status.set_defaults(func=cmd_status)
    lint = sub.add_parser(
        "lint",
        help="static invariant checks (reprolint) over the source tree")
    lint.add_argument("--root", type=str, default=None,
                      help="tree to lint (default: the repro package)")
    lint.add_argument("--baseline", type=str, default=None,
                      help="baseline file (default: nearest "
                           "lint_baseline.toml above the root)")
    lint.add_argument("--strict", action="store_true",
                      help="also fail on stale baseline grants")
    lint.add_argument("--workers", type=int, default=None,
                      help="process-pool width for per-module "
                           "parse+walk (default: serial)")
    lint.add_argument("--changed", action="store_true",
                      help="report only files differing from the git "
                           "merge base (full tree still analysed)")
    lint.add_argument("--graph", action="store_true",
                      help="dump the resolved call graph and the "
                           "stage-contract table, then exit")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to accept the "
                           "current findings")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout")
    lint.add_argument("--sarif", action="store_true",
                      help="SARIF 2.1.0 report on stdout (new "
                           "findings carry baselineState: new)")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
