"""Parallel batched extraction across a worker pool.

Per-sample sanity + extraction is embarrassingly parallel — each
sample's static/dynamic analysis is independent until aggregation — so
``ParallelExtractionEngine`` shards the pipeline's stage-1/stage-2 work
into chunks over a ``ProcessPoolExecutor``.  Every worker rebuilds the
analysis components once from the (fork-inherited) world; results come
back as picklable :class:`SampleOutcome` values and are merged by the
caller **in submission order**, so a parallel run is bit-identical to
the serial one.

``workers=1`` is a deterministic in-process fallback: the same chunk
functions run synchronously against the caller's own components, with
no pool, no pickling and no extra processes.
"""

import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.records import MinerRecord
from repro.core.sanity import SanityVerdict
from repro.corpus.model import SampleRecord, SyntheticWorld
from repro.fuzzyhash.ctph import FuzzyHash, compute
from repro.perf.cache import cached_ctph, warm_ctph

#: chunks are capped so stragglers cannot serialise the pool, and kept
#: large enough that task pickling does not dominate.
_MAX_CHUNK = 64


@dataclass(frozen=True)
class AnalysisSpec:
    """Everything a worker needs to rebuild the analysis components."""

    positives_threshold: int
    analysis_date: object
    use_ha_reports: bool


@dataclass
class SampleOutcome:
    """Result of one sample's stage-1 or stage-2 analysis.

    ``kind`` is one of ``nonexec`` / ``deferred`` / ``rejected`` /
    ``miner`` (stage 1) or ``clean`` / ``exception`` (stage 2).  Only
    the fields the merge step needs travel back over the pickle queue.
    """

    index: int
    sha256: str
    kind: str
    verdict: Optional[SanityVerdict] = None
    record: Optional[MinerRecord] = None
    has_network: bool = False
    used_static: bool = False


# --------------------------------------------------------------------------
# Per-sample analysis (shared by the serial and pooled paths)
# --------------------------------------------------------------------------


def stage1_analyze(sample: SampleRecord, index: int, checker,
                   engine) -> SampleOutcome:
    """Sanity checks + extraction for one sample (pipeline stage 1)."""
    if not checker.is_executable(sample.raw):
        return SampleOutcome(index, sample.sha256, "nonexec",
                             verdict=SanityVerdict(
                                 sample.sha256, is_executable=False,
                                 reasons="not an executable"))
    if not checker.is_malware(sample.sha256):
        return SampleOutcome(index, sample.sha256, "deferred")
    record, report = engine.extract_with_report(sample)
    has_network = report is not None and len(report.flows) > 0
    is_miner = (bool(record.identifiers)
                or checker.is_miner(sample, report))
    verdict = SanityVerdict(
        sample.sha256, is_executable=True, is_malware=True,
        is_miner=is_miner, whitelisted_tool=False)
    return SampleOutcome(
        index, sample.sha256, "miner" if is_miner else "rejected",
        verdict=verdict, record=record if is_miner else None,
        has_network=has_network, used_static=record.used_static)


def stage2_sweep(sample: SampleRecord, index: int,
                 confirmed: FrozenSet[str], engine) -> SampleOutcome:
    """Illicit-wallet exception sweep for one deferred sample."""
    quick = engine.extract_static_only(sample)
    if not set(quick.identifiers) & confirmed:
        return SampleOutcome(index, sample.sha256, "clean",
                             verdict=SanityVerdict(
                                 sample.sha256, is_executable=True,
                                 is_malware=False,
                                 reasons="below AV threshold"))
    record, _report = engine.extract_with_report(sample)
    verdict = SanityVerdict(
        sample.sha256, is_executable=True, is_malware=True,
        is_miner=True, used_wallet_exception=True)
    return SampleOutcome(index, sample.sha256, "exception",
                         verdict=verdict, record=record)


# --------------------------------------------------------------------------
# Worker-process plumbing
# --------------------------------------------------------------------------

#: (world, checker, engine) of this worker process; set by the
#: initializer, rebuilt once per process rather than once per task.
_WORKER_STATE: Optional[tuple] = None


def _init_worker(world: SyntheticWorld, spec: AnalysisSpec,
                 forked: Optional[object] = None) -> None:
    global _WORKER_STATE
    if forked is not None:
        # rendezvous first: the parent's quiesce window only needs to
        # cover the forks themselves, not the component builds.
        forked.wait(timeout=60)
    from repro.core.pipeline import build_analysis_components
    checker, engine = build_analysis_components(world, spec)
    _WORKER_STATE = (world, checker, engine)


def _noop() -> None:
    """Pre-start filler task (see ``_prestart_workers``)."""


def _stage1_chunk(indices: Sequence[int]) -> List[SampleOutcome]:
    world, checker, engine = _WORKER_STATE
    return [stage1_analyze(world.samples[i], i, checker, engine)
            for i in indices]


def _stage2_chunk(indices: Sequence[int],
                  confirmed: FrozenSet[str]) -> List[SampleOutcome]:
    world, _checker, engine = _WORKER_STATE
    return [stage2_sweep(world.samples[i], i, confirmed, engine)
            for i in indices]


def _ctph_chunk(sample_hashes: Sequence[str],
                catalog_indices: Sequence[int]) -> List[FuzzyHash]:
    """CTPH digests for samples (by hash) then catalog builds (by index)."""
    world = _WORKER_STATE[0]
    out: List[FuzzyHash] = []
    for sha in sample_hashes:
        out.append(compute(world.sample_by_hash(sha).raw))
    binaries = world.stock_catalog.binaries()
    for i in catalog_indices:
        out.append(compute(binaries[i].raw))
    return out


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


class ParallelExtractionEngine:
    """Chunked fan-out of per-sample extraction over a process pool.

    Use as a context manager around the pipeline stages; the pool is
    created lazily on first map call and torn down on exit.  With
    ``workers=1`` nothing is forked and the maps run in-process against
    ``local_components`` — the deterministic fallback.
    """

    def __init__(self, world: SyntheticWorld, spec: AnalysisSpec,
                 workers: int = 1,
                 local_components: Optional[tuple] = None,
                 chunk_size: Optional[int] = None,
                 fork_barrier: Optional[Callable] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._world = world
        self._spec = spec
        self.workers = workers
        self._local = local_components
        self._chunk_size = chunk_size
        self._executor: Optional[ProcessPoolExecutor] = None
        #: context-manager factory bracketing worker creation — owners
        #: of live threads (the chunk prefetcher) pass their
        #: ``quiesced`` hook so every fork happens while those threads
        #: are parked at a lock-free point (FORK001).
        self._fork_barrier = fork_barrier or nullcontext

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ParallelExtractionEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Tear down the worker pool (no-op for the in-process path)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # compile the scan kernel before forking so every worker
            # inherits the automata instead of rebuilding them.
            from repro.perf.scan import prewarm_scan_kernel
            prewarm_scan_kernel()
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            # a barrier in initargs is inheritable under fork only;
            # without fork there is nothing to quiesce for anyway.
            forked = (context.Barrier(self.workers + 1)
                      if context.get_start_method() == "fork" else None)
            with self._fork_barrier():
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context,
                    initializer=_init_worker,
                    initargs=(self._world, self._spec, forked))
                if forked is not None:
                    self._prestart_workers(forked)
        return self._executor

    def _prestart_workers(self, forked) -> None:
        """Fork the full worker complement inside the barrier window.

        ``ProcessPoolExecutor`` forks lazily, one process per submit
        with no idle worker — so ``workers`` filler tasks force every
        fork now, while the ``fork_barrier`` context is held.  Each
        new process blocks in its initializer on ``forked`` (none can
        go idle early and absorb the next filler), and the parent
        joins the same barrier, holding the quiesce window open until
        the last fork has happened.
        """
        futures = [self._executor.submit(_noop)
                   for _ in range(self.workers)]
        forked.wait(timeout=60)
        for future in futures:
            future.result()

    def _components(self) -> tuple:
        if self._local is None:
            from repro.core.pipeline import build_analysis_components
            self._local = build_analysis_components(self._world, self._spec)
        return self._local

    def _chunks(self, items: Sequence) -> List[Sequence]:
        size = self._chunk_size or max(
            1, min(_MAX_CHUNK, math.ceil(len(items) / (self.workers * 4))))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _map_chunks(self, fn, chunks: List[Sequence], *extra) -> list:
        """Submit all chunks, then flatten results in submission order."""
        futures = [self._pool().submit(fn, chunk, *extra)
                   for chunk in chunks]
        out: list = []
        for future in futures:
            out.extend(future.result())
        return out

    # -- maps --------------------------------------------------------------

    def map_stage1(self, indices: Sequence[int]) -> List[SampleOutcome]:
        """Stage-1 sanity + extraction for samples at ``indices``."""
        indices = list(indices)
        if self.workers == 1:
            _world = self._world
            checker, engine = self._components()
            return [stage1_analyze(_world.samples[i], i, checker, engine)
                    for i in indices]
        return self._map_chunks(_stage1_chunk, self._chunks(indices))

    def map_stage2(self, indices: Sequence[int],
                   confirmed: FrozenSet[str]) -> List[SampleOutcome]:
        """Wallet-exception sweep for deferred samples at ``indices``."""
        indices = list(indices)
        confirmed = frozenset(confirmed)
        if self.workers == 1:
            _world = self._world
            _checker, engine = self._components()
            return [stage2_sweep(_world.samples[i], i, confirmed, engine)
                    for i in indices]
        return self._map_chunks(_stage2_chunk, self._chunks(indices),
                                confirmed)

    def warm_fuzzy_hashes(self, sample_hashes: Sequence[str],
                          catalog_indices: Sequence[int]) -> int:
        """Precompute CTPH digests in the pool and seed the memo.

        Enrichment's stock-tool attribution then hits the content cache
        instead of hashing the catalog and every candidate serially.
        Returns the number of digests computed.
        """
        sample_hashes = list(sample_hashes)
        catalog_indices = list(catalog_indices)
        binaries = self._world.stock_catalog.binaries()
        payload: List[Tuple[str, bytes]] = (
            [("s", sha) for sha in sample_hashes]
            + [("c", i) for i in catalog_indices])
        if not payload:
            return 0
        if self.workers == 1:
            for kind, key in payload:
                raw = (self._world.sample_by_hash(key).raw if kind == "s"
                       else binaries[key].raw)
                cached_ctph(raw)
            return len(payload)
        chunks = self._chunks(payload)
        futures = []
        for chunk in chunks:
            shas = [key for kind, key in chunk if kind == "s"]
            cat = [key for kind, key in chunk if kind == "c"]
            futures.append(self._pool().submit(_ctph_chunk, shas, cat))
        for chunk, future in zip(chunks, futures):
            shas = [key for kind, key in chunk if kind == "s"]
            cat = [key for kind, key in chunk if kind == "c"]
            digests = future.result()
            raws = ([self._world.sample_by_hash(sha).raw for sha in shas]
                    + [binaries[i].raw for i in cat])
            for raw, digest in zip(raws, digests):
                warm_ctph(raw, digest)
        return len(payload)
