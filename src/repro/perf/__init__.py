"""Performance subsystem: caching, profiling and parallel extraction.

- :mod:`repro.perf.cache` — bounded LRU memos with hit/miss counters
  for CTPH digests, entropy, DNS resolution and pool lookups.
- :mod:`repro.perf.profiler` — per-stage wall-time timers and the
  ``--profile`` stage-breakdown table.
- :mod:`repro.perf.parallel` — the chunked worker-pool extraction
  engine (imported lazily: it pulls in the core pipeline components).
"""

from repro.perf.cache import (
    CachingResolver,
    LruCache,
    cache_stats,
    cached_ctph,
    cached_entropy,
    clear_caches,
)
from repro.perf.profiler import PipelineProfiler, StageTiming

__all__ = [
    "CachingResolver",
    "LruCache",
    "cache_stats",
    "cached_ctph",
    "cached_entropy",
    "clear_caches",
    "PipelineProfiler",
    "StageTiming",
    "AnalysisSpec",
    "ParallelExtractionEngine",
    "SampleOutcome",
]


def __getattr__(name):
    if name in ("AnalysisSpec", "ParallelExtractionEngine",
                "SampleOutcome"):
        from repro.perf import parallel
        return getattr(parallel, name)
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
