"""Performance subsystem: caching, profiling, scanning and parallelism.

- :mod:`repro.perf.cache` — bounded LRU memos with hit/miss counters
  for CTPH digests, entropy, unpack results, DNS resolution and pool
  lookups.
- :mod:`repro.perf.scan` — the compile-once multi-pattern scan kernel
  (Aho-Corasick literal matching, fused regex alternations, shared
  per-sample scan contexts).
- :mod:`repro.perf.profiler` — per-stage wall-time timers and the
  ``--profile`` stage-breakdown table.
- :mod:`repro.perf.parallel` — the chunked worker-pool extraction
  engine (imported lazily: it pulls in the core pipeline components).
"""

from repro.perf.cache import (
    CachingResolver,
    LruCache,
    cache_stats,
    cached_ctph,
    cached_entropy,
    cached_unpack,
    clear_caches,
    render_cache_table,
)
from repro.perf.profiler import PipelineProfiler, StageTiming

__all__ = [
    "CachingResolver",
    "LruCache",
    "cache_stats",
    "cached_ctph",
    "cached_entropy",
    "cached_unpack",
    "clear_caches",
    "render_cache_table",
    "PipelineProfiler",
    "StageTiming",
    "AnalysisSpec",
    "ParallelExtractionEngine",
    "SampleOutcome",
    "AhoCorasick",
    "ScanContext",
    "ScanKernel",
    "prewarm_scan_kernel",
    "scan_context",
    "scan_stats",
    "reset_scan_stats",
    "render_scan_stats",
]

_PARALLEL = ("AnalysisSpec", "ParallelExtractionEngine", "SampleOutcome")
_SCAN = ("AhoCorasick", "ScanContext", "ScanKernel", "prewarm_scan_kernel",
         "scan_context", "scan_stats", "reset_scan_stats",
         "render_scan_stats")


def __getattr__(name):
    if name in _PARALLEL:
        from repro.perf import parallel
        return getattr(parallel, name)
    if name in _SCAN:
        from repro.perf import scan
        return getattr(scan, name)
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
