"""Substrate caches: LRU memos with hit/miss counters.

The pipeline's hot paths recompute pure functions of immutable inputs —
CTPH digests and entropy of raw binaries, DNS/CNAME resolutions, and
pool-directory suffix walks.  This module provides one bounded LRU
implementation plus process-wide memo instances for the content-keyed
substrates, so repeated work (ablation reruns, serial-vs-parallel
comparisons, bench iterations, the stock-tool catalog index) is never
redone.  Every cache exposes hit/miss counters; ``cache_stats()``
aggregates them for the profiler and the scaling bench.
"""

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.binfmt.entropy import shannon_entropy
from repro.fuzzyhash.ctph import FuzzyHash, compute

_K = object  # documentation alias: keys must be hashable


class LruCache:
    """A bounded LRU memo with hit/miss accounting.

    Keys must be hashable; values are whatever the compute callable
    returns.  Thread-safe: worker threads and the profiler may read
    counters while the pipeline populates entries.
    """

    def __init__(self, name: str, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key) -> Optional[object]:
        """The cached value, or None (which is never cached itself)."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        """Insert ``key`` -> ``value``, evicting the oldest entry."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def get_or_compute(self, key, fn: Callable[[], object]):
        """Memoised call: return cached value or compute-and-store."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
        value = fn()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters snapshot: hits, misses, size and hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "hit_rate": round(self.hit_rate, 4),
        }


# --------------------------------------------------------------------------
# Process-wide content-keyed memos
# --------------------------------------------------------------------------

#: CTPH digests keyed by binary content (bytes hash their content once
#: and cache it, so repeat lookups are cheap).
CTPH_CACHE = LruCache("ctph", maxsize=8192)

#: Shannon entropy keyed by binary content.
ENTROPY_CACHE = LruCache("entropy", maxsize=8192)


def cached_ctph(data: bytes) -> FuzzyHash:
    """CTPH of ``data``, memoised by content."""
    key = bytes(data)
    return CTPH_CACHE.get_or_compute(key, lambda: compute(key))


def warm_ctph(data: bytes, value: FuzzyHash) -> None:
    """Pre-seed the CTPH memo (used by the parallel precompute stage)."""
    CTPH_CACHE.put(bytes(data), value)


def cached_entropy(data: bytes) -> float:
    """Shannon entropy of ``data``, memoised by content."""
    key = bytes(data)
    return ENTROPY_CACHE.get_or_compute(key, lambda: shannon_entropy(key))


def cache_stats() -> Dict[str, Dict[str, float]]:
    """Counters for every process-wide cache, by cache name."""
    return {cache.name: cache.stats()
            for cache in (CTPH_CACHE, ENTROPY_CACHE)}


def clear_caches() -> None:
    """Reset the process-wide memos (tests and benches isolate runs)."""
    CTPH_CACHE.clear()
    ENTROPY_CACHE.clear()


# --------------------------------------------------------------------------
# Resolver memo
# --------------------------------------------------------------------------


class CachingResolver:
    """LRU-memoised facade over :class:`repro.netsim.dns.Resolver`.

    Resolution is a pure function of (name, date) for a fixed zone, and
    the pipeline resolves the same pool/alias domains for thousands of
    samples, so a small memo removes almost all repeat walks.
    """

    def __init__(self, resolver, maxsize: int = 4096) -> None:
        self._resolver = resolver
        self.cache = LruCache("dns_resolve", maxsize=maxsize)

    def resolve(self, name: str, when):
        """Memoised ``Resolver.resolve`` (keyed by lowercase name + date)."""
        key = (name.lower(), when)
        return self.cache.get_or_compute(
            key, lambda: self._resolver.resolve(name, when))

    def cname_targets(self, name: str, when) -> List[str]:
        """Delegate CNAME-chain lookups to the wrapped resolver."""
        return self._resolver.cname_targets(name, when)
