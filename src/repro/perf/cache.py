"""Substrate caches: LRU memos with hit/miss counters.

The pipeline's hot paths recompute pure functions of immutable inputs —
CTPH digests and entropy of raw binaries, DNS/CNAME resolutions, and
pool-directory suffix walks.  This module provides one bounded LRU
implementation plus process-wide memo instances for the content-keyed
substrates, so repeated work (ablation reruns, serial-vs-parallel
comparisons, bench iterations, the stock-tool catalog index) is never
redone.  Every cache exposes hit/miss counters; ``cache_stats()``
aggregates them for the profiler and the scaling bench.
"""

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.binfmt.entropy import shannon_entropy
from repro.binfmt.packers import identify_packer, unpack
from repro.common.errors import BinaryFormatError
from repro.fuzzyhash.ctph import FuzzyHash, compute

_K = object  # documentation alias: keys must be hashable


class LruCache:
    """A bounded LRU memo with hit/miss accounting.

    Keys must be hashable; values are whatever the compute callable
    returns.  Thread-safe: worker threads and the profiler may read
    counters while the pipeline populates entries.
    """

    def __init__(self, name: str, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key) -> Optional[object]:
        """The cached value, or None (which is never cached itself)."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        """Insert ``key`` -> ``value``, evicting the oldest entry."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def get_or_compute(self, key, fn: Callable[[], object]):
        """Memoised call: return cached value or compute-and-store."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
        value = fn()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters snapshot: hits, misses, size and hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "hit_rate": round(self.hit_rate, 4),
        }


# --------------------------------------------------------------------------
# Process-wide content-keyed memos
# --------------------------------------------------------------------------

#: CTPH digests keyed by binary content (bytes hash their content once
#: and cache it, so repeat lookups are cheap).
CTPH_CACHE = LruCache("ctph", maxsize=8192)

#: Shannon entropy keyed by binary content.
ENTROPY_CACHE = LruCache("entropy", maxsize=8192)

#: ``(scannable_bytes, unpacked)`` keyed by raw binary content, so the
#: sanity checker and the static analyzer share one ``unpack()`` walk
#: per sample instead of each reversing the same packer independently.
UNPACK_CACHE = LruCache("unpack", maxsize=4096)

#: Caches registered by other perf modules (the scan-context memo in
#: :mod:`repro.perf.scan`) so ``cache_stats`` / ``clear_caches`` cover
#: them without import cycles.
_EXTRA_CACHES: List[LruCache] = []


def register_cache(cache: LruCache) -> LruCache:
    """Include ``cache`` in process-wide stats/clearing; returns it."""
    _EXTRA_CACHES.append(cache)
    return cache


def _all_caches() -> List[LruCache]:
    return [CTPH_CACHE, ENTROPY_CACHE, UNPACK_CACHE, *_EXTRA_CACHES]


def cached_ctph(data: bytes) -> FuzzyHash:
    """CTPH of ``data``, memoised by content."""
    key = bytes(data)
    return CTPH_CACHE.get_or_compute(key, lambda: compute(key))


def warm_ctph(data: bytes, value: FuzzyHash) -> None:
    """Pre-seed the CTPH memo (used by the parallel precompute stage)."""
    CTPH_CACHE.put(bytes(data), value)


def cached_entropy(data: bytes) -> float:
    """Shannon entropy of ``data``, memoised by content."""
    key = bytes(data)
    return ENTROPY_CACHE.get_or_compute(key, lambda: shannon_entropy(key))


def cached_unpack(raw: bytes) -> Tuple[bytes, bool]:
    """``(scannable_bytes, unpacked)`` for ``raw``, memoised by content.

    Mirrors what sanity's ``_scannable_bytes`` and the static analyzer
    each did separately: reverse a fingerprinted packer when possible,
    fall back to the raw bytes for crypters / corrupt payloads.  The
    flag is True only when a packer was actually reversed.
    """
    key = bytes(raw)

    def compute_unpack() -> Tuple[bytes, bool]:
        if identify_packer(key) is None:
            return (key, False)
        try:
            return (unpack(key), True)
        except BinaryFormatError:
            return (key, False)

    return UNPACK_CACHE.get_or_compute(key, compute_unpack)


def cache_stats() -> Dict[str, Dict[str, float]]:
    """Counters for every process-wide cache, by cache name."""
    return {cache.name: cache.stats() for cache in _all_caches()}


def clear_caches() -> None:
    """Reset the process-wide memos (tests and benches isolate runs)."""
    for cache in _all_caches():
        cache.clear()


def render_cache_table() -> str:
    """The cache hit/miss counters as an aligned text table."""
    header = (f"{'cache':<16} {'hits':>10} {'misses':>10} "
              f"{'size':>8} {'hit rate':>9}")
    lines = [header, "-" * len(header)]
    for cache in _all_caches():
        stats = cache.stats()
        lines.append(
            f"{cache.name:<16} {stats['hits']:>10} {stats['misses']:>10} "
            f"{stats['size']:>8} {stats['hit_rate']:>9.1%}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Resolver memo
# --------------------------------------------------------------------------


class CachingResolver:
    """LRU-memoised facade over :class:`repro.netsim.dns.Resolver`.

    Resolution is a pure function of (name, date) for a fixed zone, and
    the pipeline resolves the same pool/alias domains for thousands of
    samples, so a small memo removes almost all repeat walks.
    """

    def __init__(self, resolver, maxsize: int = 4096) -> None:
        self._resolver = resolver
        self.cache = LruCache("dns_resolve", maxsize=maxsize)

    def resolve(self, name: str, when):
        """Memoised ``Resolver.resolve`` (keyed by lowercase name + date)."""
        key = (name.lower(), when)
        return self.cache.get_or_compute(
            key, lambda: self._resolver.resolve(name, when))

    def cname_targets(self, name: str, when) -> List[str]:
        """Delegate CNAME-chain lookups to the wrapped resolver."""
        return self._resolver.cname_targets(name, when)
