"""Per-stage pipeline profiling.

``PipelineProfiler`` collects wall-time per named stage plus arbitrary
item counters, and renders an aligned stage-breakdown table (the
``--profile`` CLI flag).  Timers nest: entering a stage while another is
open simply records both independently, so callers never need to worry
about re-entrancy.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StageTiming:
    """Accumulated timing for one named stage."""

    name: str
    wall_s: float = 0.0
    calls: int = 0
    items: int = 0

    @property
    def items_per_s(self) -> float:
        return self.items / self.wall_s if self.wall_s > 0 else 0.0


@dataclass
class PipelineProfiler:
    """Wall-time per stage + free-form counters for one pipeline run."""

    stages: Dict[str, StageTiming] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    #: insertion order of first appearance, so the table reads like the
    #: pipeline executes.
    _order: List[str] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str, items: int = 0):
        """Time one stage execution; ``items`` feeds the rate column."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(name, time.perf_counter() - start, items=items)

    def record(self, name: str, wall_s: float, items: int = 0) -> None:
        """Add one timed execution of ``name``."""
        timing = self.stages.get(name)
        if timing is None:
            timing = StageTiming(name)
            self.stages[name] = timing
            self._order.append(name)
        timing.wall_s += wall_s
        timing.calls += 1
        timing.items += items

    def count(self, name: str, n: int = 1) -> None:
        """Bump a free-form counter (per-sample events, cache sizes...)."""
        self.counters[name] = self.counters.get(name, 0) + n

    @property
    def total_wall_s(self) -> float:
        return sum(t.wall_s for t in self.stages.values())

    # ------------------------------------------------------------------

    def render_table(self) -> str:
        """The stage breakdown as an aligned text table."""
        total = self.total_wall_s
        header = (f"{'stage':<32} {'wall s':>9} {'%':>6} "
                  f"{'items':>8} {'items/s':>10}")
        lines = [header, "-" * len(header)]
        for name in self._order:
            timing = self.stages[name]
            share = 100.0 * timing.wall_s / total if total else 0.0
            rate = (f"{timing.items_per_s:,.0f}" if timing.items else "-")
            items = f"{timing.items}" if timing.items else "-"
            lines.append(f"{timing.name:<32} {timing.wall_s:>9.3f} "
                         f"{share:>5.1f}% {items:>8} {rate:>10}")
        lines.append("-" * len(header))
        lines.append(f"{'total':<32} {total:>9.3f}")
        if self.counters:
            lines.append("")
            width = max(len(k) for k in self.counters)
            for key in sorted(self.counters):
                lines.append(f"{key:<{width}}  {self.counters[key]}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, float]:
        """Stage name -> wall seconds (for programmatic assertions)."""
        return {name: self.stages[name].wall_s for name in self._order}
