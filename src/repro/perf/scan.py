"""Compile-once, scan-once multi-pattern kernel (the hot-path scanner).

Every byte-scanning consumer — yarm rule evaluation in
:mod:`repro.core.sanity`, the strings / identifier / Stratum walk in
:mod:`repro.core.static_analysis` — used to traverse the same sample
independently, once per pattern.  This module collapses that work:

- :class:`AhoCorasick` ingests all literal needles of a rule set once
  and reports which fire in a single pass.  ``walk()`` is the textbook
  automaton (goto/fail/output links) and serves as the reference
  implementation; ``find()`` answers the same membership question
  through CPython's C substring search per unique needle, which for the
  small needle sets of real rule files beats stepping a pure-Python
  automaton byte by byte.  Equivalence of the two is asserted by the
  test suite, and ``find()`` self-switches to ``walk()`` for dense
  needle sets where the automaton's O(n) bound wins.
- :class:`ScanContext` memoises the derived views of one sample
  (unpacked bytes, the joined printable-strings blob, lowercase
  folds), so unpacking and string extraction happen once per sample
  instead of once per consumer.  ``scan_context`` adds a content-keyed
  LRU so sanity and static analysis share one context per binary.
- :class:`ScanKernel` compiles a :class:`~repro.yarm.engine.RuleSet`
  into per-view pattern classes: printable literals of >= blob-run
  length scan the small strings blob, everything else scans the raw
  bytes; nocase literals scan a lowercase fold computed once; the
  residual regex patterns are fused into one combined alternation per
  (view, case-sensitivity) class used as a presence prefilter before
  per-pattern confirmation.  Rules whose condition is monotone (no
  ``not``) are skipped outright when none of their strings fired.

The kernel is bit-equivalent to the legacy per-pattern evaluators
(``RuleSet.scan_legacy`` stays as the oracle): a printable needle of
length >= the blob's run threshold occurs in the sample iff it occurs
in the blob, because any occurrence lies inside a maximal printable
run, and every such run long enough to contain it is a blob line.
"""

import re
from collections import deque
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - stdlib-only environments
    _np = None

from repro.perf.cache import (
    LruCache,
    UNPACK_CACHE,
    cached_unpack,
    register_cache,
)
from repro.yarm.engine import Match, RuleSet, _NOf

#: minimum printable-run length captured in the strings blob.  Matches
#: :func:`repro.binfmt.strings.extract_strings`'s default so the blob
#: doubles as the static analyzer's strings view.
BLOB_MIN_RUN = 6

_RUNS_RE = re.compile(rb"[\x20-\x7e]{%d,}" % BLOB_MIN_RUN)

#: below this size the fixed cost of the vectorised run extractor
#: exceeds the regex engine's per-byte cost.
_VECTOR_BLOB_MIN_BYTES = 1024


def build_blob(data: bytes) -> bytes:
    """Printable runs of >= BLOB_MIN_RUN bytes, newline-joined.

    Equals ``b"\\n".join(_RUNS_RE.findall(data))``; large inputs take a
    vectorised path (edge detection over a printable-byte mask) when
    numpy is available.
    """
    if _np is None or len(data) < _VECTOR_BLOB_MIN_BYTES:
        return b"\n".join(_RUNS_RE.findall(data))
    buf = _np.frombuffer(data, dtype=_np.uint8)
    flags = _np.zeros(len(data) + 2, dtype=_np.int8)
    flags[1:-1] = (buf >= 0x20) & (buf <= 0x7E)
    edges = _np.diff(flags)
    starts = _np.flatnonzero(edges == 1)
    ends = _np.flatnonzero(edges == -1)
    keep = (ends - starts) >= BLOB_MIN_RUN
    return b"\n".join(
        [data[s:e] for s, e in
         zip(starts[keep].tolist(), ends[keep].tolist())])

#: needle count beyond which ``AhoCorasick.find`` steps the automaton
#: instead of running one C substring search per needle.
_DENSE_NEEDLE_CUTOVER = 128


# --------------------------------------------------------------------------
# Process-wide counters (surfaced via --profile)
# --------------------------------------------------------------------------

def _fresh_stats() -> Dict[str, int]:
    return {
        "kernels_built": 0,
        "kernel_scans": 0,
        "rules_skipped": 0,
        "rules_evaluated": 0,
        "regex_prefilter_misses": 0,
        "contexts_built": 0,
    }


_STATS = _fresh_stats()


def scan_stats() -> Dict[str, int]:
    """Snapshot of the kernel counters (kernel builds, scans, skips)."""
    return dict(_STATS)


def reset_scan_stats() -> None:
    """Zero the kernel counters (tests and benches isolate runs)."""
    _STATS.update(_fresh_stats())


def render_scan_stats() -> str:
    """The kernel counters as aligned ``key  value`` lines."""
    width = max(len(key) for key in _STATS)
    return "\n".join(f"{key:<{width}}  {_STATS[key]}"
                     for key in sorted(_STATS))


# --------------------------------------------------------------------------
# Aho-Corasick automaton
# --------------------------------------------------------------------------


class AhoCorasick:
    """Multi-needle literal matcher built once per needle set.

    ``needles`` keep their positional indices: both :meth:`walk` and
    :meth:`find` return the frozen set of indices whose needle occurs
    in the data.  Duplicate needles share automaton states; empty
    needles fire on every input (``b"" in data`` is always True, which
    is what the legacy per-pattern evaluator did).
    """

    def __init__(self, needles: Sequence[bytes]) -> None:
        self.needles: List[bytes] = [bytes(n) for n in needles]
        self._by_needle: Dict[bytes, List[int]] = {}
        for index, needle in enumerate(self.needles):
            self._by_needle.setdefault(needle, []).append(index)
        self._always: FrozenSet[int] = frozenset(
            self._by_needle.get(b"", ()))
        self._unique: List[bytes] = [n for n in self._by_needle if n]
        # trie: goto is a list of {byte: state}; out[state] holds the
        # unique-needle ids terminating at that state.
        goto: List[Dict[int, int]] = [{}]
        out: List[set] = [set()]
        for uid, needle in enumerate(self._unique):
            state = 0
            for byte in needle:
                nxt = goto[state].get(byte)
                if nxt is None:
                    nxt = len(goto)
                    goto.append({})
                    out.append(set())
                    goto[state][byte] = nxt
                state = nxt
            out[state].add(uid)
        # fail links by BFS; suffix outputs are merged into each state
        # so the walk never has to chase output links.
        fail = [0] * len(goto)
        queue = deque(goto[0].values())
        while queue:
            state = queue.popleft()
            for byte, child in goto[state].items():
                queue.append(child)
                link = fail[state]
                while link and byte not in goto[link]:
                    link = fail[link]
                candidate = goto[link].get(byte, 0)
                fail[child] = candidate if candidate != child else 0
                out[child] |= out[fail[child]]
        self._goto = goto
        self._fail = fail
        self._out = [frozenset(s) for s in out]

    def __len__(self) -> int:
        return len(self.needles)

    def walk(self, data: bytes) -> FrozenSet[int]:
        """One pass of the automaton over ``data`` (reference path)."""
        goto, fail, out = self._goto, self._fail, self._out
        state = 0
        hits: set = set()
        for byte in data:
            while state and byte not in goto[state]:
                state = fail[state]
            state = goto[state].get(byte, 0)
            if out[state]:
                hits |= out[state]
        return self._expand(hits)

    def find(self, data: bytes) -> FrozenSet[int]:
        """Which needles occur in ``data`` (accelerated path).

        Small needle sets use one C ``in`` per unique needle (two-way
        substring search beats a per-byte Python loop by ~100x); dense
        sets fall back to the true single-pass automaton.
        """
        if len(self._unique) >= _DENSE_NEEDLE_CUTOVER:
            return self.walk(data)
        fired = set(self._always)
        for needle, indices in self._by_needle.items():
            if needle and needle in data:
                fired.update(indices)
        return frozenset(fired)

    def _expand(self, unique_hits: Iterable[int]) -> FrozenSet[int]:
        fired = set(self._always)
        for uid in unique_hits:
            fired.update(self._by_needle[self._unique[uid]])
        return frozenset(fired)


# --------------------------------------------------------------------------
# Per-sample scan context
# --------------------------------------------------------------------------


class ScanContext:
    """Memoised derived views of one sample's scannable bytes.

    Consumers share one context per sample so the expensive pure
    functions of its content — the printable-strings blob, lowercase
    folds, the decoded strings list — are computed at most once.
    """

    __slots__ = ("raw", "data", "unpacked", "_blob", "_lowered_blob",
                 "_lowered_data", "_text", "_strings")

    def __init__(self, data: bytes, raw: Optional[bytes] = None,
                 unpacked: bool = False) -> None:
        self.raw = data if raw is None else raw
        self.data = data
        self.unpacked = unpacked
        self._blob: Optional[bytes] = None
        self._lowered_blob: Optional[bytes] = None
        self._lowered_data: Optional[bytes] = None
        self._text: Optional[str] = None
        self._strings: Optional[List[str]] = None
        _STATS["contexts_built"] += 1

    @classmethod
    def for_sample(cls, raw: bytes) -> "ScanContext":
        """Context over a sample's unpacked (scannable) bytes."""
        data, unpacked = cached_unpack(raw)
        return cls(data, raw=raw, unpacked=unpacked)

    @property
    def blob(self) -> bytes:
        """Printable runs >= BLOB_MIN_RUN chars, newline-joined."""
        if self._blob is None:
            self._blob = build_blob(self.data)
        return self._blob

    @property
    def lowered_blob(self) -> bytes:
        """Lowercase fold of :attr:`blob` (one allocation per sample)."""
        if self._lowered_blob is None:
            self._lowered_blob = self.blob.lower()
        return self._lowered_blob

    @property
    def lowered_data(self) -> bytes:
        """Lowercase fold of the full scannable bytes."""
        if self._lowered_data is None:
            self._lowered_data = self.data.lower()
        return self._lowered_data

    @property
    def text(self) -> str:
        """The strings blob decoded, for text-level scanners."""
        if self._text is None:
            self._text = self.blob.decode("ascii")
        return self._text

    @property
    def strings(self) -> List[str]:
        """Equals ``extract_strings(self.data)``: runs are blob lines."""
        if self._strings is None:
            text = self.text
            self._strings = text.split("\n") if text else []
        return self._strings


#: content-keyed contexts, so sanity's rule scan and the static
#: analyzer walk one shared view of each binary.
SCAN_CONTEXT_CACHE = register_cache(LruCache("scan_context", maxsize=2048))


def scan_context(raw: bytes) -> ScanContext:
    """The (memoised) scan context for one sample's raw bytes."""
    key = bytes(raw)
    return SCAN_CONTEXT_CACHE.get_or_compute(
        key, lambda: ScanContext.for_sample(key))


# --------------------------------------------------------------------------
# Conservative regex analysis: can a pattern scan the strings blob?
# --------------------------------------------------------------------------

_SPECIALS = frozenset(b".^$*+?{}[]()|\\")
_PRINTABLE = frozenset(range(0x20, 0x7F))


class _Unsafe(Exception):
    pass


def printable_min_len(pattern: bytes) -> Optional[int]:
    """Minimum match length of a blob-safe pattern, else None.

    A pattern is blob-safe when every string it can match consists only
    of printable ASCII: then each match lies inside one maximal
    printable run and (if long enough) inside one blob line, so
    searching the blob equals searching the raw bytes.  The analysis is
    a conservative whitelist — literals, positive character classes,
    ``(?:...)`` groups, alternation and counted quantifiers; anything
    else (anchors, ``.``, ``\\d``/``\\w``/``\\s``, lookarounds,
    backrefs) returns None and keeps the pattern on the raw view.
    """
    try:
        length, pos = _parse_alternation(pattern, 0)
    except _Unsafe:
        return None
    if pos != len(pattern):
        return None
    return length


def _parse_alternation(pattern: bytes, pos: int) -> Tuple[int, int]:
    best: Optional[int] = None
    while True:
        length, pos = _parse_sequence(pattern, pos)
        best = length if best is None else min(best, length)
        if pos < len(pattern) and pattern[pos] == ord("|"):
            pos += 1
            continue
        return best, pos


def _parse_sequence(pattern: bytes, pos: int) -> Tuple[int, int]:
    total = 0
    while pos < len(pattern):
        byte = pattern[pos]
        if byte in (ord("|"), ord(")")):
            break
        atom_len, pos = _parse_atom(pattern, pos)
        repeat, pos = _parse_quantifier(pattern, pos)
        total += atom_len * repeat
    return total, pos


def _parse_atom(pattern: bytes, pos: int) -> Tuple[int, int]:
    byte = pattern[pos]
    if byte == ord("("):
        pos += 1
        if pattern[pos:pos + 1] == b"?":
            if pattern[pos:pos + 2] != b"?:":
                raise _Unsafe  # lookarounds, flags, named groups
            pos += 2
        length, pos = _parse_alternation(pattern, pos)
        if pos >= len(pattern) or pattern[pos] != ord(")"):
            raise _Unsafe
        return length, pos + 1
    if byte == ord("["):
        return 1, _parse_class(pattern, pos + 1)
    if byte == ord("\\"):
        if pos + 1 >= len(pattern):
            raise _Unsafe
        escaped = pattern[pos + 1]
        # escaped punctuation is a printable literal; \d \w \s \b and
        # backreferences are not blob-safe.
        if escaped in _PRINTABLE and not (
                ord("0") <= escaped <= ord("9")
                or ord("a") <= escaped <= ord("z")
                or ord("A") <= escaped <= ord("Z")):
            return 1, pos + 2
        raise _Unsafe
    if byte in _SPECIALS or byte not in _PRINTABLE:
        raise _Unsafe  # anchors, '.', quantifier without atom, raw bytes
    return 1, pos + 1


def _parse_class(pattern: bytes, pos: int) -> int:
    if pos < len(pattern) and pattern[pos] == ord("^"):
        raise _Unsafe  # negated classes admit non-printable bytes
    first = True
    while pos < len(pattern):
        byte = pattern[pos]
        if byte == ord("]") and not first:
            return pos + 1
        if byte == ord("\\") or byte not in _PRINTABLE:
            raise _Unsafe
        first = False
        pos += 1
    raise _Unsafe


_BRACE_RE = re.compile(rb"\{(\d+)(,(\d*))?\}")


def _parse_quantifier(pattern: bytes, pos: int) -> Tuple[int, int]:
    if pos >= len(pattern):
        return 1, pos
    byte = pattern[pos]
    if byte in (ord("*"), ord("?")):
        return 0, _skip_lazy(pattern, pos + 1)
    if byte == ord("+"):
        return 1, _skip_lazy(pattern, pos + 1)
    if byte == ord("{"):
        match = _BRACE_RE.match(pattern, pos)
        if not match:
            raise _Unsafe
        return int(match.group(1)), _skip_lazy(pattern, match.end())
    return 1, pos


def _skip_lazy(pattern: bytes, pos: int) -> int:
    if pos < len(pattern) and pattern[pos] == ord("?"):
        return pos + 1
    return pos


# --------------------------------------------------------------------------
# The kernel
# --------------------------------------------------------------------------

#: view names a pattern class can scan.
_V_BLOB = "blob"
_V_LOWERED_BLOB = "lowered_blob"
_V_RAW = "raw"
_V_LOWERED_RAW = "lowered_raw"


def _context_view(ctx: ScanContext, view: str) -> bytes:
    if view == _V_BLOB:
        return ctx.blob
    if view == _V_LOWERED_BLOB:
        return ctx.lowered_blob
    if view == _V_RAW:
        return ctx.data
    return ctx.lowered_data


class ScanKernel:
    """A rule set compiled into one-pass multi-pattern scan plans.

    Built once per :class:`~repro.yarm.engine.RuleSet` (and therefore
    once per process for the built-in miner rules); ``scan()`` is
    bit-equivalent to ``RuleSet.scan_legacy``.
    """

    def __init__(self, ruleset: RuleSet) -> None:
        # slot = index of one unique (kind, pattern, nocase) triple.
        slot_of: Dict[tuple, int] = {}
        literal_groups: Dict[str, Tuple[List[bytes], List[int]]] = {}
        regex_groups: Dict[Tuple[str, int], List[Tuple[int, "re.Pattern"]]] \
            = {}
        self._plans: List[tuple] = []
        for rule in ruleset.rules:
            plan: List[Tuple[str, int]] = []
            for sp in rule.strings:
                key = (sp.kind, sp.pattern, sp.nocase)
                slot = slot_of.get(key)
                if slot is None:
                    slot = len(slot_of)
                    slot_of[key] = slot
                    self._classify(sp, slot, literal_groups, regex_groups)
                plan.append((sp.identifier, slot))
            # a rule is skippable only when its condition is monotone
            # AND references only declared strings — conditions naming
            # unknown identifiers must still raise, like the legacy
            # evaluator does.
            declared = {sp.identifier for sp in rule.strings}
            monotone = (_is_monotone(rule.condition)
                        and _condition_idents(rule.condition) <= declared)
            plan_bits = [(ident, 1 << slot) for ident, slot in plan]
            plan_mask = 0
            for _, bit in plan_bits:
                plan_mask |= bit
            # plain "N of them" conditions resolve directly on the
            # fired mask: any -> mask hit, all -> every plan bit set,
            # counted N -> popcount.  Duplicate identifiers (the dict
            # overwrite case) and identifiers sharing a slot keep the
            # generic AST path; counted N also needs one bit per
            # identifier for popcount to equal the fired-ident count.
            nof = None
            idents = [ident for ident, _ in plan]
            if (monotone and isinstance(rule.condition, _NOf)
                    and len(set(idents)) == len(idents)):
                count = rule.condition.count
                if count in (0, -1) or len({b for _, b in plan_bits}) \
                        == len(plan_bits):
                    nof = count
            self._plans.append(
                (rule, plan_bits, monotone, plan_mask, nof))
        self._slot_count = len(slot_of)
        self._automata: List[Tuple[str, AhoCorasick, List[int]]] = [
            (view, AhoCorasick(needles), slots)
            for view, (needles, slots) in literal_groups.items()
        ]
        # per-view literal matchers: fired slots are tracked as bits of
        # one integer mask, so the monotone-skip test below is a single
        # AND.  Sparse needle sets run one C substring search per unique
        # needle; dense sets step the automaton.
        self._literal_groups: List[tuple] = []
        for view, automaton, slots in self._automata:
            base = 0
            for local in automaton._always:
                base |= 1 << slots[local]
            pairs = None
            if len(automaton._unique) < _DENSE_NEEDLE_CUTOVER:
                pairs = []
                for needle, locals_ in automaton._by_needle.items():
                    if not needle:
                        continue
                    bit = 0
                    for local in locals_:
                        bit |= 1 << slots[local]
                    pairs.append((needle, bit))
            local_bits = [1 << slot for slot in slots]
            self._literal_groups.append(
                (view, pairs, automaton, local_bits, base))
        # one combined alternation per (view, flags) class: a single
        # search answers "does anything here fire?" before per-pattern
        # confirmation pinpoints which members did.
        self._regex_groups: List[tuple] = []
        for (view, flags), members in regex_groups.items():
            fused = None
            if len(members) > 1:
                fused = re.compile(
                    b"|".join(b"(?:%s)" % rx.pattern for _, rx in members),
                    flags)
            self._regex_groups.append(
                (view, fused, [(1 << slot, rx) for slot, rx in members]))
        _STATS["kernels_built"] += 1

    @staticmethod
    def _classify(sp, slot: int, literal_groups, regex_groups) -> None:
        """Assign one unique pattern to its (view, matcher) class."""
        if sp.kind == "regex":
            flags = re.IGNORECASE if sp.nocase else 0
            min_len = printable_min_len(sp.pattern)
            view = (_V_BLOB if min_len is not None
                    and min_len >= BLOB_MIN_RUN else _V_RAW)
            regex_groups.setdefault((view, flags), []).append(
                (slot, re.compile(sp.pattern, flags)))
            return
        if sp.kind == "hex":
            # the legacy evaluator ignores nocase for hex patterns
            needle, view = sp.pattern, _V_RAW
        elif sp.nocase:
            needle = sp.pattern.lower()
            view = (_V_LOWERED_BLOB if _is_blob_needle(needle)
                    else _V_LOWERED_RAW)
        else:
            needle = sp.pattern
            view = _V_BLOB if _is_blob_needle(needle) else _V_RAW
        needles, slots = literal_groups.setdefault(view, ([], []))
        needles.append(needle)
        slots.append(slot)

    # ------------------------------------------------------------------

    def scan(self, data) -> List[Match]:
        """All rule matches for ``data`` (bytes or a ScanContext)."""
        ctx = data if isinstance(data, ScanContext) else ScanContext(data)
        _STATS["kernel_scans"] += 1
        mask = 0
        for view, pairs, automaton, local_bits, base in self._literal_groups:
            buffer = _context_view(ctx, view)
            mask |= base
            if pairs is not None:
                for needle, bit in pairs:
                    if needle in buffer:
                        mask |= bit
            else:
                for local in automaton.walk(buffer):
                    mask |= local_bits[local]
        for view, fused, members in self._regex_groups:
            buffer = _context_view(ctx, view)
            if fused is not None and fused.search(buffer) is None:
                _STATS["regex_prefilter_misses"] += 1
                continue
            for bit, rx in members:
                if rx.search(buffer):
                    mask |= bit
        matches: List[Match] = []
        skipped = evaluated = 0
        for rule, plan_bits, monotone, plan_mask, nof in self._plans:
            sub = mask & plan_mask
            if monotone and not sub:
                skipped += 1
                continue
            evaluated += 1
            if nof is not None:
                if nof == -1:
                    hit = sub == plan_mask
                elif nof <= 1:
                    hit = sub != 0
                else:
                    hit = sub.bit_count() >= nof
                if hit:
                    matches.append(Match(
                        rule=rule.name,
                        tags=list(rule.tags),
                        fired=[ident for ident, bit in plan_bits
                               if mask & bit],
                    ))
                continue
            # duplicate identifiers overwrite in declaration order,
            # exactly like the legacy dict comprehension.
            rule_fired = {ident: mask & bit != 0 for ident, bit in plan_bits}
            if rule.condition.evaluate(rule_fired):
                matches.append(Match(
                    rule=rule.name,
                    tags=list(rule.tags),
                    fired=[ident for ident, hit in rule_fired.items()
                           if hit],
                ))
        _STATS["rules_skipped"] += skipped
        _STATS["rules_evaluated"] += evaluated
        return matches


def _is_blob_needle(needle: bytes) -> bool:
    """Printable needles of blob-run length scan the strings blob."""
    return (len(needle) >= BLOB_MIN_RUN
            and all(byte in _PRINTABLE for byte in needle))


def _condition_idents(node) -> set:
    """All ``$identifier`` names referenced by a condition AST."""
    names: set = set()
    stack = [node]
    while stack:
        current = stack.pop()
        name = getattr(current, "name", None)
        if isinstance(name, str):
            names.add(name)
        for attr in ("left", "right", "child"):
            child = getattr(current, attr, None)
            if child is not None:
                stack.append(child)
    return names


def _is_monotone(node) -> bool:
    """True when the condition AST contains no negation.

    For such conditions an all-False fired map always evaluates False,
    so rules with no fired strings can be skipped without building the
    map or walking the AST.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if current.__class__.__name__ == "_Not":
            return False
        for attr in ("left", "right", "child"):
            child = getattr(current, attr, None)
            if child is not None:
                stack.append(child)
    return True


# --------------------------------------------------------------------------
# Process prewarm + profiler integration
# --------------------------------------------------------------------------


def prewarm_scan_kernel() -> None:
    """Compile the built-in kernel in this process (call before fork).

    Worker processes forked by the parallel extraction engine then
    inherit the compiled automata and fused regexes instead of each
    rebuilding them on first scan.
    """
    from repro.yarm.builtin import builtin_miner_rules
    builtin_miner_rules().kernel()
    import repro.wallets.detect  # noqa: F401  (compiles the combined regex)


@contextmanager
def profiled_scan(profiler):
    """Feed kernel + memo counter deltas into a PipelineProfiler.

    Wrap a pipeline or ingest run: on exit the counters gained during
    the block land in the profiler's free-form counter table, next to
    the per-stage timings that ``--profile`` prints.
    """
    stats_before = scan_stats()
    memos = (UNPACK_CACHE, SCAN_CONTEXT_CACHE)
    memo_before = {cache.name: (cache.hits, cache.misses)
                   for cache in memos}
    try:
        yield profiler
    finally:
        stats_after = scan_stats()
        for key, value in stats_after.items():
            delta = value - stats_before.get(key, 0)
            if delta:
                profiler.count(f"scan_{key}", delta)
        for cache in memos:
            hits0, misses0 = memo_before[cache.name]
            if cache.hits - hits0:
                profiler.count(f"{cache.name}_memo_hits",
                               cache.hits - hits0)
            if cache.misses - misses0:
                profiler.count(f"{cache.name}_memo_misses",
                               cache.misses - misses0)
