"""Flow-capture interchange: JSONL serialisation of sandbox traffic.

Sandbox network captures travel between tools as flow logs.  This
module serialises :class:`~repro.netsim.flows.FlowLog` to JSON-lines
(one flow per line) and parses them back, so captures can be archived
with the exported dataset or fed to external analytics.
"""

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.netsim.flows import FlowLog, FlowRecord

PathLike = Union[str, Path]


__all__ = [
    "dump_flows",
    "flow_from_dict",
    "flow_to_dict",
    "load_flows",
    "merge_captures",
]


def flow_to_dict(flow: FlowRecord) -> dict:
    """JSON-serialisable dictionary view of one flow."""
    return {
        "dst_host": flow.dst_host,
        "dst_ip": flow.dst_ip,
        "dst_port": flow.dst_port,
        "protocol": flow.protocol,
        "login": flow.login,
        "password": flow.password,
        "agent": flow.agent,
        "payload_excerpt": flow.payload_excerpt,
    }


def flow_from_dict(data: dict) -> FlowRecord:
    """Rebuild a FlowRecord from its JSON dictionary."""
    return FlowRecord(
        dst_host=data.get("dst_host", ""),
        dst_ip=data.get("dst_ip", ""),
        dst_port=int(data.get("dst_port", 0)),
        protocol=data.get("protocol", "tcp"),
        login=data.get("login"),
        password=data.get("password"),
        agent=data.get("agent"),
        payload_excerpt=data.get("payload_excerpt", ""),
    )


def dump_flows(log: FlowLog, path: PathLike) -> int:
    """Write one JSON object per flow; returns flows written."""
    count = 0
    with Path(path).open("w") as handle:
        for flow in log:
            handle.write(json.dumps(flow_to_dict(flow),
                                    separators=(",", ":")) + "\n")
            count += 1
    return count


def load_flows(path: PathLike) -> FlowLog:
    """Parse a JSONL capture back into a FlowLog."""
    log = FlowLog()
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            log.record(flow_from_dict(json.loads(line)))
    return log


def merge_captures(captures: Iterable[FlowLog]) -> FlowLog:
    """Concatenate several captures into one log."""
    merged = FlowLog()
    for capture in captures:
        for flow in capture:
            merged.record(flow)
    return merged
