"""Network flow records (the sandbox traffic capture).

A flow is one TCP connection observed during dynamic analysis.  Stratum
flows carry the parsed login identifier and the destination hostname the
sample used (pre-resolution), which is what the extraction stage mines.
"""

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class FlowRecord:
    """One observed connection."""

    dst_host: str            # hostname the sample connected to ("" if by IP)
    dst_ip: str
    dst_port: int
    protocol: str            # "stratum" | "http" | "dns" | "tcp"
    login: Optional[str] = None      # Stratum login identifier, if any
    password: Optional[str] = None   # Stratum pass field
    agent: Optional[str] = None      # Stratum user agent
    payload_excerpt: str = ""        # first bytes of payload, printable


class FlowLog:
    """Append-only capture of flows from one sandbox execution."""

    def __init__(self) -> None:
        self._flows: List[FlowRecord] = []

    def record(self, flow: FlowRecord) -> None:
        """Append one flow to the capture."""
        self._flows.append(flow)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._flows)

    def __len__(self) -> int:
        return len(self._flows)

    def stratum_flows(self) -> List[FlowRecord]:
        """Only the flows speaking the Stratum protocol."""
        return [f for f in self._flows if f.protocol == "stratum"]

    def contacted_hosts(self) -> List[str]:
        """Distinct hostnames contacted, in first-seen order."""
        seen = set()
        hosts = []
        for flow in self._flows:
            if flow.dst_host and flow.dst_host not in seen:
                seen.add(flow.dst_host)
                hosts.append(flow.dst_host)
        return hosts
