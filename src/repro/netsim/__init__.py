"""Network substrate: DNS, passive DNS history, IPs and flow records.

Reproduces the network-facing pieces of the paper's methodology:

* a resolver with A and CNAME records, so campaigns can hide mining
  pools behind domain aliases (the Freebuf ``xt.freebuf.info`` trick);
* a passive-DNS history service (the ThreatCrowd analog the paper uses
  to recover CNAMEs that have since changed, §III-E);
* flow records as emitted by the sandbox network capture.
"""

from repro.netsim.dns import (
    DnsRecord,
    DnsZone,
    PassiveDns,
    Resolver,
)
from repro.netsim.flows import FlowRecord, FlowLog
from repro.netsim.ipspace import IpAllocator

__all__ = [
    "DnsRecord",
    "DnsZone",
    "PassiveDns",
    "Resolver",
    "FlowRecord",
    "FlowLog",
    "IpAllocator",
]
