"""Deterministic IPv4 allocation for the simulated internet.

Allocates addresses from documented/test prefixes so generated data can
never collide with real-world infrastructure, while case-study fixtures
(e.g. the USA-138 host 221.9.251.236 from the paper) can still be pinned
explicitly.
"""

import ipaddress
from typing import Dict

from repro.common.rng import DeterministicRNG


class IpAllocator:
    """Hands out unique IPv4 addresses, optionally keyed by owner label."""

    def __init__(self, rng: DeterministicRNG, base_net: str = "10.0.0.0/8") -> None:
        self._rng = rng.substream("ipspace")
        self._network = ipaddress.ip_network(base_net)
        self._allocated: Dict[str, str] = {}
        self._used: set = set()

    def allocate(self, owner: str = "") -> str:
        """Allocate a fresh address; the same owner always gets the same IP."""
        if owner and owner in self._allocated:
            return self._allocated[owner]
        size = self._network.num_addresses
        while True:
            offset = self._rng.randint(1, size - 2)
            ip = str(self._network[offset])
            if ip not in self._used:
                self._used.add(ip)
                if owner:
                    self._allocated[owner] = ip
                return ip

    def pin(self, owner: str, ip: str) -> str:
        """Pin an explicit address (for paper case-study fixtures)."""
        ipaddress.ip_address(ip)  # validate
        self._allocated[owner] = ip
        self._used.add(ip)
        return ip

    def owner_ip(self, owner: str) -> str:
        """The address previously allocated/pinned for ``owner``."""
        if owner not in self._allocated:
            raise KeyError(f"no IP allocated for {owner!r}")
        return self._allocated[owner]
