"""DNS zones, resolution and passive-DNS history.

Records are time-versioned: a CNAME can point at ``pool.minexmr.com``
for one period and at ``crypto-pool.fr`` later — the paper observed two
aliases (x.alibuf.com, xmrf.fjhan.club) that each fronted two different
pools over time.  ``PassiveDns`` exposes the full history, which is how
the pipeline de-aliases domains whose records have since changed.
"""

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.simtime import Date, SIM_END, SIM_START

_MAX_CNAME_DEPTH = 8


@dataclass(frozen=True)
class DnsRecord:
    """One time-versioned DNS record."""

    name: str
    rtype: str  # "A" | "CNAME"
    value: str
    valid_from: Date = SIM_START
    valid_to: Date = SIM_END

    def active_at(self, when: Date) -> bool:
        """Whether the record is valid on the given date."""
        return self.valid_from <= when <= self.valid_to


class DnsZone:
    """Mutable registry of DNS records for the whole simulated internet."""

    def __init__(self) -> None:
        self._records: Dict[str, List[DnsRecord]] = {}

    def add(self, record: DnsRecord) -> None:
        """Register one record."""
        self._records.setdefault(record.name.lower(), []).append(record)

    def add_a(self, name: str, ip: str, valid_from: Date = SIM_START,
              valid_to: Date = SIM_END) -> None:
        """Register an A record for ``name`` -> ``ip``."""
        self.add(DnsRecord(name, "A", ip, valid_from, valid_to))

    def add_cname(self, name: str, target: str, valid_from: Date = SIM_START,
                  valid_to: Date = SIM_END) -> None:
        """Register a CNAME alias ``name`` -> ``target``."""
        self.add(DnsRecord(name, "CNAME", target, valid_from, valid_to))

    def records_for(self, name: str) -> List[DnsRecord]:
        """All records (any validity window) for a name."""
        return list(self._records.get(name.lower(), []))

    def all_names(self) -> List[str]:
        """Every name with at least one record."""
        return list(self._records)


@dataclass
class ResolutionResult:
    """Outcome of a resolution: final IP plus the CNAME chain walked."""

    name: str
    ip: Optional[str]
    cname_chain: List[str] = field(default_factory=list)

    @property
    def resolved(self) -> bool:
        return self.ip is not None


class Resolver:
    """Point-in-time resolver over a :class:`DnsZone`."""

    def __init__(self, zone: DnsZone) -> None:
        self._zone = zone

    def resolve(self, name: str, when: Date) -> ResolutionResult:
        """Resolve ``name`` at date ``when``, following CNAMEs."""
        chain: List[str] = []
        current = name.lower()
        for _ in range(_MAX_CNAME_DEPTH):
            records = [r for r in self._zone.records_for(current)
                       if r.active_at(when)]
            a_records = [r for r in records if r.rtype == "A"]
            if a_records:
                return ResolutionResult(name, a_records[0].value, chain)
            cnames = [r for r in records if r.rtype == "CNAME"]
            if not cnames:
                return ResolutionResult(name, None, chain)
            chain.append(cnames[0].value.lower())
            current = cnames[0].value.lower()
        return ResolutionResult(name, None, chain)

    def cname_targets(self, name: str, when: Date) -> List[str]:
        """Targets of active CNAME records for ``name`` (no recursion)."""
        return [
            r.value.lower()
            for r in self._zone.records_for(name)
            if r.rtype == "CNAME" and r.active_at(when)
        ]


class PassiveDns:
    """Historical DNS database (the ThreatCrowd analog).

    ``history`` returns every record that has ever existed for a name,
    which lets the pipeline recover pool aliases whose CNAMEs were
    rotated before the sample was analysed.
    """

    def __init__(self, zone: DnsZone) -> None:
        self._zone = zone

    def history(self, name: str) -> List[DnsRecord]:
        """Every record that has ever existed for ``name``."""
        return self._zone.records_for(name)

    def ever_cname_targets(self, name: str) -> List[str]:
        """All CNAME targets a name has pointed at, in record order."""
        seen: Set[str] = set()
        out: List[str] = []
        for record in self._zone.records_for(name):
            if record.rtype == "CNAME":
                target = record.value.lower()
                if target not in seen:
                    seen.add(target)
                    out.append(target)
        return out

    def names_pointing_at(self, target: str) -> List[str]:
        """Reverse lookup: which names have ever CNAME'd to ``target``."""
        target = target.lower()
        out = []
        for name in self._zone.all_names():
            for record in self._zone.records_for(name):
                if record.rtype == "CNAME" and record.value.lower() == target:
                    out.append(name)
                    break
        return out
