"""Campaign economics: underground-market costs vs mined revenue.

§II prices the inputs (an encrypted miner ~$35, a builder service ~$13,
PPI installs sold per thousand, re-obfuscation subscriptions) and §VIII
concludes the business has "relatively low cost and high return of
investment".  This module adds the arithmetic: given a botnet trace and
a market rate card, compute the operator's outlay, the mined XMR at
historical prices, and the ROI.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.botnet.population import BotnetSimulator, PopulationDay
from repro.market.rates import RATES


@dataclass(frozen=True)
class MarketRates:
    """Underground price card (USD), anchored to §II observations."""

    encrypted_miner: float = 35.0         # one-off miner purchase
    builder_service: float = 13.0         # custom build service
    install_per_thousand: float = 120.0   # PPI installs (per 1K, mixed geo)
    reobfuscation_monthly: float = 25.0   # crypter subscription
    proxy_server_monthly: float = 15.0    # rented VPS for mining proxy
    private_pool_monthly: float = 50.0


@dataclass
class CampaignEconomics:
    """Cost/revenue breakdown of one simulated operation."""

    installs: int
    install_cost: float
    tooling_cost: float
    infra_cost: float
    mined_xmr: float
    revenue_usd: float

    @property
    def total_cost(self) -> float:
        return self.install_cost + self.tooling_cost + self.infra_cost

    @property
    def profit_usd(self) -> float:
        return self.revenue_usd - self.total_cost

    @property
    def roi(self) -> float:
        """Revenue multiple on cost (inf when the operation was free)."""
        if self.total_cost <= 0:
            return float("inf")
        return self.revenue_usd / self.total_cost


def campaign_roi(simulator: BotnetSimulator,
                 trace: List[PopulationDay],
                 rates: Optional[MarketRates] = None,
                 uses_proxy: bool = False,
                 uses_crypter: bool = True,
                 uses_private_pool: bool = False) -> CampaignEconomics:
    """Price a simulated operation and compute its return.

    Revenue converts the mined XMR at each mining day's historical
    price (the paper's dated-payment conversion), so campaigns that
    straddle the January 2018 peak show the same USD/XMR divergence as
    Table VIII.
    """
    rates = rates or MarketRates()
    installs = simulator.total_installs(trace)
    months = max(1, len(trace) // 30)
    install_cost = installs / 1000.0 * rates.install_per_thousand
    tooling = rates.encrypted_miner + rates.builder_service
    if uses_crypter:
        tooling += rates.reobfuscation_monthly * months
    infra = 0.0
    if uses_proxy:
        infra += rates.proxy_server_monthly * months
    if uses_private_pool:
        infra += rates.private_pool_monthly * months

    xmr_rates = RATES["XMR"]
    mined_xmr = 0.0
    revenue = 0.0
    from repro.chain.emission import MONERO_EMISSION, network_hashrate_hs
    for day in trace:
        network = network_hashrate_hs(day.day)
        share = min(1.0, day.hashrate_hs / network)
        day_xmr = MONERO_EMISSION.daily_emission(day.day) * share
        mined_xmr += day_xmr
        revenue += xmr_rates.to_usd(day_xmr, day.day)

    return CampaignEconomics(
        installs=installs,
        install_cost=install_cost,
        tooling_cost=tooling,
        infra_cost=infra,
        mined_xmr=mined_xmr,
        revenue_usd=revenue,
    )
