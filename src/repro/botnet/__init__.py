"""Botnet population substrate.

The paper's campaigns run on botnets of infected machines: operators
buy installs from PPI services, bots churn (cleanup, reinstalls, AV
catching up), and the surviving population determines both the hashrate
a wallet shows at a pool and the distinct-IP count that triggers bans
(§II: "a good trade-off ... is using botnets with less than 2K bots";
§V: 5,352 / 8,099 / 13K IPs behind single wallets).

:class:`BotnetSimulator` models that population day by day;
:func:`repro.botnet.economics.campaign_roi` prices the operation with
underground-market rates and compares cost against mined revenue — the
"low cost and high return of investment" argument of §VIII, made
quantitative.
"""

from repro.botnet.population import (
    BotnetConfig,
    BotnetSimulator,
    PopulationDay,
)
from repro.botnet.economics import (
    CampaignEconomics,
    MarketRates,
    campaign_roi,
)

__all__ = [
    "BotnetConfig",
    "BotnetSimulator",
    "PopulationDay",
    "CampaignEconomics",
    "MarketRates",
    "campaign_roi",
]
