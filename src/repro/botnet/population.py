"""Day-by-day botnet population dynamics.

A simple birth/death model with the knobs the underground economy
exposes: an initial install purchase, optional re-supply purchases when
the population sags, daily attrition (victims cleaning up, machines
going offline, AV signatures landing), and a post-fork collapse when
the operator fails to push a miner update (stranded bots still burn CPU
— §VI notes victims keep being harmed — but contribute no valid
shares).
"""

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.rng import DeterministicRNG
from repro.common.simtime import Date, add_days, date_range

#: per-bot CryptoNight CPU hashrate (H/s): consumer machines.
HASHRATE_PER_BOT = 100.0


@dataclass(frozen=True)
class BotnetConfig:
    """Operator strategy knobs."""

    initial_installs: int = 1000
    daily_attrition: float = 0.012      # ~1.2%/day population decay
    resupply_threshold: float = 0.5     # rebuy when below this fraction
    resupply_batch: int = 500
    max_resupplies: int = 10
    target_cap: Optional[int] = 2000    # the <2K-bots stealth advice
    idle_mining: bool = True            # mine only on idle machines


@dataclass
class PopulationDay:
    """One simulated day of the botnet."""

    day: Date
    bots: int
    effective_bots: int      # bots actually mining (idle-mining duty cycle)
    hashrate_hs: float
    installs_bought: int = 0


class BotnetSimulator:
    """Replays a botnet population over an activity window."""

    #: idle-mining duty cycle: machines are user-idle ~2/3 of the day.
    IDLE_DUTY_CYCLE = 0.66

    def __init__(self, config: BotnetConfig, rng: DeterministicRNG) -> None:
        self.config = config
        self._rng = rng.substream("botnet")

    def run(self, start: Date, end: Date) -> List[PopulationDay]:
        """Simulate the population from ``start`` to ``end``."""
        config = self.config
        days: List[PopulationDay] = []
        population = float(config.initial_installs)
        total_installs = config.initial_installs
        resupplies_left = config.max_resupplies
        for day in date_range(start, end):
            bought = 0
            # attrition with small daily noise
            attrition = config.daily_attrition * \
                self._rng.uniform(0.6, 1.4)
            population *= (1.0 - attrition)
            if (resupplies_left > 0
                    and population < config.initial_installs
                    * config.resupply_threshold):
                bought = config.resupply_batch
                population += bought
                total_installs += bought
                resupplies_left -= 1
            if config.target_cap is not None:
                population = min(population, float(config.target_cap))
            bots = max(0, int(population))
            duty = self.IDLE_DUTY_CYCLE if config.idle_mining else 1.0
            effective = int(bots * duty)
            days.append(PopulationDay(
                day=day,
                bots=bots,
                effective_bots=effective,
                hashrate_hs=effective * HASHRATE_PER_BOT,
                installs_bought=bought,
            ))
        return days

    def total_installs(self, trace: List[PopulationDay]) -> int:
        """Installs purchased over a trace (initial batch included)."""
        return self.config.initial_installs + sum(
            day.installs_bought for day in trace)

    @staticmethod
    def peak_bots(trace: List[PopulationDay]) -> int:
        return max((day.bots for day in trace), default=0)

    @staticmethod
    def distinct_ips(trace: List[PopulationDay],
                     nat_factor: float = 0.85) -> int:
        """Distinct IPs a pool would see over the trace.

        Roughly the cumulative distinct-bot count discounted for NAT
        (several bots behind one address) — the quantity the paper
        obtained from a pool operator (5,352 and 8,099 IPs, §V-A).
        """
        if not trace:
            return 0
        initial = trace[0].bots
        resupplied = sum(day.installs_bought for day in trace)
        return int((initial + resupplied) * nat_factor)

    def mined_xmr(self, trace: List[PopulationDay]) -> float:
        """XMR this population would mine (network-share model)."""
        from repro.chain.emission import (
            MONERO_EMISSION,
            network_hashrate_hs,
        )
        total = 0.0
        for day in trace:
            network = network_hashrate_hs(day.day)
            share = min(1.0, day.hashrate_hs / network)
            total += MONERO_EMISSION.daily_emission(day.day) * share
        return total
