"""Per-sample and per-wallet record schemas (Tables I and II)."""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.simtime import Date


@dataclass
class MinerRecord:
    """Data extracted for each sample — the paper's Table I, field for
    field (SHA256, POOL, URLPOOL, USER, PASS, NTHREADS, AGENT, DSTIP,
    DSTPORT, DNSRR, SOURCE, FS, ITW_URL, PACKER, POSITIVES, TYPE)."""

    sha256: str
    pool: Optional[str] = None          # normalised pool name
    url_pool: Optional[str] = None      # full stratum URL mined against
    user: Optional[str] = None          # login identifier
    password: Optional[str] = None
    nthreads: Optional[int] = None
    agent: Optional[str] = None
    dst_ip: Optional[str] = None
    dst_port: Optional[int] = None
    dns_rr: List[str] = field(default_factory=list)
    source: str = ""
    first_seen: Optional[Date] = None
    itw_urls: List[str] = field(default_factory=list)
    packer: Optional[str] = None
    positives: int = 0
    type: str = "Miner"                 # "Miner" | "Ancillary"

    # extraction extras the aggregation consumes
    identifiers: List[str] = field(default_factory=list)
    identifier_coins: List[Optional[str]] = field(default_factory=list)
    parents: List[str] = field(default_factory=list)
    dropped: List[str] = field(default_factory=list)
    cname_aliases: List[str] = field(default_factory=list)  # alias -> pool
    proxy_ips: List[str] = field(default_factory=list)
    entropy: float = 0.0
    obfuscated: bool = False
    used_dynamic: bool = False
    used_static: bool = False

    @property
    def is_miner(self) -> bool:
        return self.type == "Miner"


@dataclass
class WalletRecord:
    """Per-wallet, per-pool data — the paper's Table II (POOL, USER,
    HASHES, HASHRATE, LAST_SHARE, BALANCE, TOTAL_PAID, NUM_PAYMENTS,
    DATE_QUERY, USD), plus payment timestamps for transparent pools."""

    pool: str
    user: str
    coin: str = "XMR"
    hashes: float = 0.0
    hashrate: float = 0.0
    last_share: Optional[Date] = None
    balance: float = 0.0
    total_paid: float = 0.0
    num_payments: int = 0
    date_query: Optional[Date] = None
    usd: float = 0.0
    payments: List[Tuple[Date, float]] = field(default_factory=list)
    hashrate_history: List[Tuple[Date, float]] = field(default_factory=list)
