"""Dynamic analysis (§III-C): sandbox execution and artifact mining.

Detonates samples in the sandbox (or reuses a Hybrid-Analysis report
when one exists) and extracts mining identifiers from command lines and
Stratum flows, contacted hosts, dropped files and DNS resolutions.
"""

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.corpus.model import SampleRecord
from repro.intel.ha import HaService
from repro.sandbox.emulator import Sandbox, SandboxReport
from repro.wallets.detect import (
    ClassifiedIdentifier,
    IdentifierKind,
    classify_identifier,
    extract_identifiers,
)

#: miner command lines carry the login after -u / --user / --login.
_CMDLINE_USER_RE = re.compile(r"(?:-u|--user|--login)[ =]([^\s\"']+)")
_CMDLINE_URL_RE = re.compile(
    r"(?:-o|--url)[ =](?:stratum\+(?:tcp|ssl)://)?"
    r"(?P<host>[A-Za-z0-9.-]+):(?P<port>\d{2,5})"
)
_CMDLINE_THREADS_RE = re.compile(r"(?:-t|--threads)[ =](\d{1,3})")


@dataclass
class DynamicFindings:
    """What one sandbox run revealed."""

    identifiers: List[ClassifiedIdentifier] = field(default_factory=list)
    stratum_targets: List[Tuple[str, int]] = field(default_factory=list)
    logins: List[Tuple[str, str, str]] = field(default_factory=list)
    # ^ (login, password, agent) triplets from Stratum flows
    contacted_domains: List[str] = field(default_factory=list)
    dropped: List[str] = field(default_factory=list)
    cmdlines: List[str] = field(default_factory=list)
    nthreads: Optional[int] = None
    dst_ips: List[str] = field(default_factory=list)
    report: Optional[SandboxReport] = None

    def add_identifier(self, classified: ClassifiedIdentifier) -> None:
        """Record a classified identifier once (UNKNOWNs are dropped)."""
        if classified.kind is IdentifierKind.UNKNOWN:
            return
        if not any(i.value == classified.value for i in self.identifiers):
            self.identifiers.append(classified)


class DynamicAnalyzer:
    """Runs (or fetches) dynamic analysis and mines the artifacts."""

    def __init__(self, sandbox: Sandbox,
                 ha: Optional[HaService] = None) -> None:
        self._sandbox = sandbox
        self._ha = ha

    def analyze(self, sample: SampleRecord) -> DynamicFindings:
        """Detonate (or fetch) and mine one sample's dynamic artifacts."""
        report = None
        if self._ha is not None:
            report = self._ha.get_report(sample.sha256)
        if report is None:
            report = self._sandbox.run(sample.sha256, sample.behavior)
        return self.mine_report(report)

    def mine_report(self, report: SandboxReport) -> DynamicFindings:
        """Extract mining evidence from an existing sandbox report."""
        findings = DynamicFindings(report=report)
        findings.dropped = list(report.dropped_files)
        findings.contacted_domains = sorted(set(report.dns_queries))
        findings.cmdlines = list(report.processes)
        for cmdline in report.processes:
            self._mine_cmdline(cmdline, findings)
        for flow in report.flows.stratum_flows():
            host = flow.dst_host or flow.dst_ip
            target = (host, flow.dst_port)
            if target not in findings.stratum_targets:
                findings.stratum_targets.append(target)
            if flow.dst_ip and flow.dst_ip not in findings.dst_ips:
                findings.dst_ips.append(flow.dst_ip)
            if flow.login:
                findings.add_identifier(classify_identifier(flow.login))
                triplet = (flow.login, flow.password or "",
                           flow.agent or "")
                if triplet not in findings.logins:
                    findings.logins.append(triplet)
        return findings

    def _mine_cmdline(self, cmdline: str,
                      findings: DynamicFindings) -> None:
        for match in _CMDLINE_USER_RE.finditer(cmdline):
            findings.add_identifier(classify_identifier(match.group(1)))
        for match in _CMDLINE_URL_RE.finditer(cmdline):
            target = (match.group("host").lower(), int(match.group("port")))
            if target not in findings.stratum_targets:
                findings.stratum_targets.append(target)
        threads = _CMDLINE_THREADS_RE.search(cmdline)
        if threads:
            findings.nthreads = int(threads.group(1))
        for classified in extract_identifiers(cmdline):
            findings.add_identifier(classified)
