"""Campaign aggregation (§III-E): the grouping graph.

Nodes are typed resources (samples, identifiers, hosting URLs/IPs,
CNAME aliases, proxies, known operations); edges encode the six grouping
features.  Each connected component is one campaign.  A
:class:`GroupingPolicy` toggles feature classes so the ablation benches
can compare against the wallet-only baseline of prior work.

Deliberate non-features (the paper is explicit about these):
donation wallets are excluded before edges are drawn; PPI botnet
membership and stock-tool usage never create edges; public-repo hosting
only links samples when the *full URL* matches.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple
from urllib.parse import urlparse

import networkx as nx

from repro.common.net import is_ipv4_literal
from repro.common.simtime import Date
from repro.core.records import MinerRecord
from repro.osint.feeds import OsintFeeds

#: registrable domains treated as shared public infrastructure: hosting
#: there must not merge unrelated campaigns unless the URL is identical.
PUBLIC_REPO_DOMAINS = frozenset({
    "github.com", "amazonaws.com", "weebly.com", "google.com",
    "googleusercontent.com", "dropbox.com", "discordapp.com", "goo.gl",
    "bitbucket.org", "4sync.com", "pomf.cat", "up-00.com",
})


#: a typed node of the grouping graph: ("sample", sha256), ("id", W)...
Node = Tuple[str, str]


__all__ = [
    "Campaign",
    "CampaignAggregator",
    "GroupingPolicy",
    "build_campaign",
    "finalize_campaigns",
    "is_public_repo_host",
    "operation_for",
    "record_attachments",
]


def _registrable(host: str) -> str:
    parts = host.lower().split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else host.lower()


def is_public_repo_host(host: str) -> bool:
    """Whether a host belongs to shared public-repo infrastructure."""
    return _registrable(host) in PUBLIC_REPO_DOMAINS


@dataclass(frozen=True)
class GroupingPolicy:
    """Which grouping features are enabled."""

    same_identifier: bool = True
    ancestors: bool = True
    hosting: bool = True
    known_operations: bool = True
    cname_aliases: bool = True
    proxies: bool = True
    exclude_donation_wallets: bool = True

    @classmethod
    def full(cls) -> "GroupingPolicy":
        return cls()

    @classmethod
    def wallet_only(cls) -> "GroupingPolicy":
        """The prior-work baseline (Hong et al. / Kharraz et al.)."""
        return cls(ancestors=False, hosting=False, known_operations=False,
                   cname_aliases=False, proxies=False)


@dataclass
class Campaign:
    """One recovered campaign (a connected component)."""

    campaign_id: int
    sample_hashes: List[str] = field(default_factory=list)
    identifiers: List[str] = field(default_factory=list)
    identifier_coins: Dict[str, Optional[str]] = field(default_factory=dict)
    cname_aliases: List[str] = field(default_factory=list)
    proxies: List[str] = field(default_factory=list)
    hosting_urls: List[str] = field(default_factory=list)
    hosting_ips: List[str] = field(default_factory=list)
    operations: List[str] = field(default_factory=list)
    records: List[MinerRecord] = field(default_factory=list)

    # filled by enrichment / profit stages
    total_xmr: float = 0.0
    total_usd: float = 0.0
    pools_used: List[str] = field(default_factory=list)
    first_seen: Optional[Date] = None
    last_seen: Optional[Date] = None
    last_share: Optional[Date] = None
    uses_ppi: bool = False
    ppi_botnets: List[str] = field(default_factory=list)
    stock_tools: List[str] = field(default_factory=list)
    #: (framework, version, sample sha) for every attributed tool build
    stock_tool_matches: List[tuple] = field(default_factory=list)
    obfuscated: bool = False
    packers: Dict[str, int] = field(default_factory=dict)

    @property
    def num_samples(self) -> int:
        return len(self.sample_hashes)

    @property
    def num_wallets(self) -> int:
        return len(self.identifiers)

    @property
    def coins(self) -> Set[str]:
        return {c for c in self.identifier_coins.values() if c}

    @property
    def miner_records(self) -> List[MinerRecord]:
        return [r for r in self.records if r.is_miner]

    @property
    def active(self) -> bool:
        import datetime
        return (self.last_share is not None
                and self.last_share >= datetime.date(2019, 4, 1))


def operation_for(record: MinerRecord,
                  osint: OsintFeeds) -> Optional[str]:
    """Known-operation attribution: IoC hash, wallet, or C&C domain."""
    operation = osint.operation_for_sample(record.sha256)
    if operation is not None:
        return operation.name
    for identifier in record.identifiers:
        operation = osint.operation_for_wallet(identifier)
        if operation is not None:
            return operation.name
    for domain in record.dns_rr:
        operation = osint.operation_for_domain(domain)
        if operation is not None:
            return operation.name
    return None


def record_attachments(record: MinerRecord, policy: GroupingPolicy,
                       osint: OsintFeeds,
                       proxy_ips: Set[str]) -> List[Tuple[Node, str]]:
    """The grouping edges one record contributes, as (node, feature).

    This is the single source of truth for §III-E's six features —
    shared by the batch :class:`CampaignAggregator` (networkx graph) and
    the streaming :class:`repro.ingest.aggregator.IncrementalAggregator`
    (union-find), so both build the exact same graph.

    The hosting rule is applied exactly as the paper states it: link on
    the exact URL (parameters included), or on the hosting *IP* when the
    URL addresses a bare IP rather than a (possibly shared) domain.
    """
    out: List[Tuple[Node, str]] = []
    if policy.same_identifier:
        for identifier in record.identifiers:
            if (policy.exclude_donation_wallets
                    and osint.is_donation_wallet(identifier)):
                continue
            out.append((("id", identifier), "same_identifier"))
    if policy.ancestors:
        for parent in record.parents:
            out.append((("sample", parent), "ancestor"))
        for child in record.dropped:
            out.append((("sample", child), "ancestor"))
    if policy.hosting:
        for url in record.itw_urls:
            out.append((("url", url), "hosting"))
            host = urlparse(url).hostname or ""
            if is_ipv4_literal(host):
                out.append((("hostip", host), "hosting"))
    if policy.known_operations:
        operation = operation_for(record, osint)
        if operation is not None:
            out.append((("op", operation), "known_operation"))
    if policy.cname_aliases:
        for alias in record.cname_aliases:
            out.append((("cname", alias), "cname"))
    if policy.proxies and record.dst_ip in proxy_ips:
        out.append((("proxy", record.dst_ip), "proxy"))
    return out


def build_campaign(component: Iterable[Node],
                   by_hash: Dict[str, MinerRecord]) -> Optional[Campaign]:
    """Materialise one connected component into a :class:`Campaign`.

    Returns None for infrastructure-only fragments (no miner sample).
    All member lists come out sorted, so two aggregators producing the
    same components produce *equal* campaigns regardless of the order
    nodes entered their graphs.
    """
    samples = sorted(sha for kind, sha in component if kind == "sample")
    miner_records = [
        by_hash[sha] for sha in samples
        if sha in by_hash and by_hash[sha].is_miner
    ]
    if not miner_records:
        return None  # infrastructure-only fragments are not campaigns
    campaign = Campaign(campaign_id=0)
    campaign.sample_hashes = samples
    campaign.records = [by_hash[sha] for sha in samples if sha in by_hash]
    for kind, value in component:
        if kind == "id":
            campaign.identifiers.append(value)
        elif kind == "cname":
            campaign.cname_aliases.append(value)
        elif kind == "proxy":
            campaign.proxies.append(value)
        elif kind == "url":
            campaign.hosting_urls.append(value)
        elif kind == "hostip":
            campaign.hosting_ips.append(value)
        elif kind == "op":
            campaign.operations.append(value)
    campaign.identifiers.sort()
    campaign.cname_aliases.sort()
    campaign.proxies.sort()
    campaign.hosting_urls.sort()
    campaign.hosting_ips.sort()
    campaign.operations.sort()
    for record in campaign.records:
        for identifier, coin in zip(record.identifiers,
                                    record.identifier_coins):
            campaign.identifier_coins.setdefault(identifier, coin)
    return campaign


def finalize_campaigns(campaigns: List[Campaign]) -> List[Campaign]:
    """Canonical campaign ordering and numbering: biggest first, ties
    broken by the (sorted) sample-hash list, so the output is a pure
    function of the graph — independent of component discovery order."""
    campaigns.sort(key=lambda c: (-c.num_samples, c.sample_hashes))
    for index, campaign in enumerate(campaigns, start=1):
        campaign.campaign_id = index
    return campaigns


class CampaignAggregator:
    """Builds the grouping graph and cuts it into campaigns.

    One-shot: :meth:`aggregate` consumes the instance.  A second call
    raises instead of silently merging both record sets into one graph
    (the historical footgun).  Streams of records are the job of
    :class:`repro.ingest.aggregator.IncrementalAggregator`, which shares
    the edge rules via :func:`record_attachments`.
    """

    def __init__(self, osint: OsintFeeds,
                 policy: Optional[GroupingPolicy] = None,
                 proxy_ips: Optional[Set[str]] = None) -> None:
        self._osint = osint
        self._policy = policy or GroupingPolicy.full()
        #: IPs established as mining proxies (wallet active at a known
        #: pool while the sample mined against this non-pool address).
        self._proxy_ips = proxy_ips or set()
        self.graph = nx.Graph()
        self._aggregated = False

    # ------------------------------------------------------------------

    def aggregate(self, records: Iterable[MinerRecord]) -> List[Campaign]:
        """Build the grouping graph over ``records`` and cut campaigns.

        May be called once per aggregator; the grouping graph stays
        readable on :attr:`graph` afterwards, but a repeat call raises
        :class:`RuntimeError` — it would union the new record set with
        the previous one and hand back merged campaigns.
        """
        if self._aggregated:
            raise RuntimeError(
                "aggregate() already ran on this CampaignAggregator; "
                "build a new instance per record set (the grouping "
                "graph would otherwise merge both sets), or use "
                "repro.ingest.IncrementalAggregator for streams")
        self._aggregated = True
        records = list(records)
        for record in records:
            self._add_record(record)
        return self._components(records)

    # ------------------------------------------------------------------

    def _add_record(self, record: MinerRecord) -> None:
        node: Node = ("sample", record.sha256)
        self.graph.add_node(node, record=record)
        for other, feature in record_attachments(
                record, self._policy, self._osint, self._proxy_ips):
            self.graph.add_edge(node, other, feature=feature)

    # ------------------------------------------------------------------

    def _components(self, records: List[MinerRecord]) -> List[Campaign]:
        by_hash = {r.sha256: r for r in records}
        campaigns: List[Campaign] = []
        for component in nx.connected_components(self.graph):
            campaign = build_campaign(component, by_hash)
            if campaign is not None:
                campaigns.append(campaign)
        return finalize_campaigns(campaigns)
