"""Campaign aggregation (§III-E): the grouping graph.

Nodes are typed resources (samples, identifiers, hosting URLs/IPs,
CNAME aliases, proxies, known operations); edges encode the six grouping
features.  Each connected component is one campaign.  A
:class:`GroupingPolicy` toggles feature classes so the ablation benches
can compare against the wallet-only baseline of prior work.

Deliberate non-features (the paper is explicit about these):
donation wallets are excluded before edges are drawn; PPI botnet
membership and stock-tool usage never create edges; public-repo hosting
only links samples when the *full URL* matches.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple
from urllib.parse import urlparse

import networkx as nx

from repro.common.net import is_ipv4_literal
from repro.common.simtime import Date
from repro.core.records import MinerRecord
from repro.osint.feeds import OsintFeeds

#: registrable domains treated as shared public infrastructure: hosting
#: there must not merge unrelated campaigns unless the URL is identical.
PUBLIC_REPO_DOMAINS = frozenset({
    "github.com", "amazonaws.com", "weebly.com", "google.com",
    "googleusercontent.com", "dropbox.com", "discordapp.com", "goo.gl",
    "bitbucket.org", "4sync.com", "pomf.cat", "up-00.com",
})


def _registrable(host: str) -> str:
    parts = host.lower().split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else host.lower()


def is_public_repo_host(host: str) -> bool:
    """Whether a host belongs to shared public-repo infrastructure."""
    return _registrable(host) in PUBLIC_REPO_DOMAINS


@dataclass(frozen=True)
class GroupingPolicy:
    """Which grouping features are enabled."""

    same_identifier: bool = True
    ancestors: bool = True
    hosting: bool = True
    known_operations: bool = True
    cname_aliases: bool = True
    proxies: bool = True
    exclude_donation_wallets: bool = True

    @classmethod
    def full(cls) -> "GroupingPolicy":
        return cls()

    @classmethod
    def wallet_only(cls) -> "GroupingPolicy":
        """The prior-work baseline (Hong et al. / Kharraz et al.)."""
        return cls(ancestors=False, hosting=False, known_operations=False,
                   cname_aliases=False, proxies=False)


@dataclass
class Campaign:
    """One recovered campaign (a connected component)."""

    campaign_id: int
    sample_hashes: List[str] = field(default_factory=list)
    identifiers: List[str] = field(default_factory=list)
    identifier_coins: Dict[str, Optional[str]] = field(default_factory=dict)
    cname_aliases: List[str] = field(default_factory=list)
    proxies: List[str] = field(default_factory=list)
    hosting_urls: List[str] = field(default_factory=list)
    hosting_ips: List[str] = field(default_factory=list)
    operations: List[str] = field(default_factory=list)
    records: List[MinerRecord] = field(default_factory=list)

    # filled by enrichment / profit stages
    total_xmr: float = 0.0
    total_usd: float = 0.0
    pools_used: List[str] = field(default_factory=list)
    first_seen: Optional[Date] = None
    last_seen: Optional[Date] = None
    last_share: Optional[Date] = None
    uses_ppi: bool = False
    ppi_botnets: List[str] = field(default_factory=list)
    stock_tools: List[str] = field(default_factory=list)
    #: (framework, version, sample sha) for every attributed tool build
    stock_tool_matches: List[tuple] = field(default_factory=list)
    obfuscated: bool = False
    packers: Dict[str, int] = field(default_factory=dict)

    @property
    def num_samples(self) -> int:
        return len(self.sample_hashes)

    @property
    def num_wallets(self) -> int:
        return len(self.identifiers)

    @property
    def coins(self) -> Set[str]:
        return {c for c in self.identifier_coins.values() if c}

    @property
    def miner_records(self) -> List[MinerRecord]:
        return [r for r in self.records if r.is_miner]

    @property
    def active(self) -> bool:
        import datetime
        return (self.last_share is not None
                and self.last_share >= datetime.date(2019, 4, 1))


class CampaignAggregator:
    """Builds the grouping graph and cuts it into campaigns."""

    def __init__(self, osint: OsintFeeds,
                 policy: Optional[GroupingPolicy] = None,
                 proxy_ips: Optional[Set[str]] = None) -> None:
        self._osint = osint
        self._policy = policy or GroupingPolicy.full()
        #: IPs established as mining proxies (wallet active at a known
        #: pool while the sample mined against this non-pool address).
        self._proxy_ips = proxy_ips or set()
        self.graph = nx.Graph()

    # ------------------------------------------------------------------

    def aggregate(self, records: Iterable[MinerRecord]) -> List[Campaign]:
        """Build the grouping graph over ``records`` and cut campaigns."""
        records = list(records)
        for record in records:
            self._add_record(record)
        return self._components(records)

    # ------------------------------------------------------------------

    def _sample_node(self, sha256: str) -> Tuple[str, str]:
        return ("sample", sha256)

    def _add_record(self, record: MinerRecord) -> None:
        policy = self._policy
        node = self._sample_node(record.sha256)
        self.graph.add_node(node, record=record)

        if policy.same_identifier:
            for identifier in record.identifiers:
                if (policy.exclude_donation_wallets
                        and self._osint.is_donation_wallet(identifier)):
                    continue
                self.graph.add_edge(node, ("id", identifier),
                                    feature="same_identifier")

        if policy.ancestors:
            for parent in record.parents:
                self.graph.add_edge(node, self._sample_node(parent),
                                    feature="ancestor")
            for child in record.dropped:
                self.graph.add_edge(node, self._sample_node(child),
                                    feature="ancestor")

        if policy.hosting:
            for url in record.itw_urls:
                self._add_hosting_edge(node, url)

        if policy.known_operations:
            operation = self._operation_for(record)
            if operation is not None:
                self.graph.add_edge(node, ("op", operation),
                                    feature="known_operation")

        if policy.cname_aliases:
            for alias in record.cname_aliases:
                self.graph.add_edge(node, ("cname", alias),
                                    feature="cname")

        if policy.proxies and record.dst_ip in self._proxy_ips:
            self.graph.add_edge(node, ("proxy", record.dst_ip),
                                feature="proxy")

    def _add_hosting_edge(self, node, url: str) -> None:
        """Hosting rule, exactly as §III-E states it: link on the exact
        URL (parameters included), or on the hosting *IP* when the URL
        addresses a bare IP rather than a (possibly shared) domain."""
        parsed = urlparse(url)
        host = parsed.hostname or ""
        self.graph.add_edge(node, ("url", url), feature="hosting")
        if is_ipv4_literal(host):
            self.graph.add_edge(node, ("hostip", host), feature="hosting")

    def _operation_for(self, record: MinerRecord) -> Optional[str]:
        operation = self._osint.operation_for_sample(record.sha256)
        if operation is not None:
            return operation.name
        for identifier in record.identifiers:
            operation = self._osint.operation_for_wallet(identifier)
            if operation is not None:
                return operation.name
        for domain in record.dns_rr:
            operation = self._osint.operation_for_domain(domain)
            if operation is not None:
                return operation.name
        return None

    # ------------------------------------------------------------------

    def _components(self, records: List[MinerRecord]) -> List[Campaign]:
        by_hash = {r.sha256: r for r in records}
        campaigns: List[Campaign] = []
        counter = 0
        for component in nx.connected_components(self.graph):
            samples = sorted(
                sha for kind, sha in component if kind == "sample"
            )
            miner_records = [
                by_hash[sha] for sha in samples if sha in by_hash
                and by_hash[sha].is_miner
            ]
            if not miner_records:
                continue  # infrastructure-only fragments are not campaigns
            counter += 1
            campaign = Campaign(campaign_id=counter)
            campaign.sample_hashes = samples
            campaign.records = [by_hash[sha] for sha in samples
                                if sha in by_hash]
            for kind, value in component:
                if kind == "id":
                    campaign.identifiers.append(value)
                elif kind == "cname":
                    campaign.cname_aliases.append(value)
                elif kind == "proxy":
                    campaign.proxies.append(value)
                elif kind == "url":
                    campaign.hosting_urls.append(value)
                elif kind == "hostip":
                    campaign.hosting_ips.append(value)
                elif kind == "op":
                    campaign.operations.append(value)
            campaign.identifiers.sort()
            for record in campaign.records:
                for identifier, coin in zip(record.identifiers,
                                            record.identifier_coins):
                    campaign.identifier_coins.setdefault(identifier, coin)
            campaigns.append(campaign)
        # stable ordering: biggest first, then id
        campaigns.sort(key=lambda c: (-c.num_samples, c.campaign_id))
        for index, campaign in enumerate(campaigns, start=1):
            campaign.campaign_id = index
        return campaigns
