"""Static analysis (§III-C): binary inspection for mining evidence.

Unpacks known packers (F-Prot analog), walks the embedded strings and
miner config for identifiers and Stratum URLs, fingerprints the packer
for Table X, and measures entropy for the obfuscation heuristic.
"""

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.binfmt.entropy import OBFUSCATION_THRESHOLD
from repro.binfmt.format import parse_binary
from repro.perf.cache import cached_entropy
from repro.perf.scan import ScanContext, scan_context
from repro.binfmt.packers import identify_packer
from repro.common.errors import BinaryFormatError
from repro.wallets.detect import (
    ClassifiedIdentifier,
    IdentifierKind,
    classify_identifier,
    extract_identifiers,
)

_STRATUM_URL_RE = re.compile(
    r"stratum\+(?:tcp|ssl)://(?P<host>[A-Za-z0-9.-]+):(?P<port>\d{2,5})"
)


@dataclass
class StaticFindings:
    """What static analysis pulled out of one binary."""

    identifiers: List[ClassifiedIdentifier] = field(default_factory=list)
    stratum_urls: List[Tuple[str, int]] = field(default_factory=list)
    packer: Optional[str] = None
    entropy: float = 0.0
    obfuscated: bool = False
    unpacked: bool = False
    strings: List[str] = field(default_factory=list)
    config_pool: Optional[str] = None

    @property
    def wallets(self) -> List[str]:
        return [i.value for i in self.identifiers
                if i.kind is IdentifierKind.WALLET]


class StaticAnalyzer:
    """Stateless binary inspector."""

    def analyze(self, raw: bytes) -> StaticFindings:
        """Inspect one binary: unpack, strings, config, entropy.

        Unpacking and string extraction go through the shared
        :func:`repro.perf.scan.scan_context` memo, so the sanity
        checker's rule scan over the same sample reuses this work.
        """
        findings = StaticFindings()
        findings.entropy = cached_entropy(raw)
        packer = identify_packer(raw)
        ctx = scan_context(raw)
        if packer is not None:
            # compression-only families (plain archives) render with a
            # suffix so Table X keeps them apart from obfuscators
            # (SIV-E: compression is not considered obfuscation).
            findings.packer = (f"{packer.name} (archive)"
                               if packer.is_compression_only
                               else packer.name)
            findings.unpacked = ctx.unpacked
        else:
            # no known packer: entropy is the only obfuscation signal
            findings.obfuscated = findings.entropy > OBFUSCATION_THRESHOLD
        if packer is not None and not packer.is_compression_only:
            findings.obfuscated = True
        self._scan_content(ctx, findings)
        return findings

    def _scan_content(self, ctx: ScanContext,
                      findings: StaticFindings) -> None:
        findings.strings = list(ctx.strings)  # findings own their copy
        blob = ctx.text
        findings.identifiers = extract_identifiers(blob)
        if "stratum+" in blob:
            for match in _STRATUM_URL_RE.finditer(blob):
                entry = (match.group("host").lower(),
                         int(match.group("port")))
                if entry not in findings.stratum_urls:
                    findings.stratum_urls.append(entry)
        # structured miner config, if the binary carries one
        try:
            parsed = parse_binary(ctx.data)
        except BinaryFormatError:
            return
        config = parsed.config
        if config:
            url = config.get("url", "")
            match = _STRATUM_URL_RE.match(url)
            if match:
                entry = (match.group("host").lower(),
                         int(match.group("port")))
                if entry not in findings.stratum_urls:
                    findings.stratum_urls.append(entry)
                findings.config_pool = match.group("host").lower()
            user = config.get("user")
            if user:
                classified = classify_identifier(user)
                if classified.kind is not IdentifierKind.UNKNOWN and not any(
                        i.value == classified.value
                        for i in findings.identifiers):
                    findings.identifiers.append(classified)
