"""Post-aggregation enrichment (§III-E "Enrichment").

Tags each campaign with information that must *not* influence grouping:
PPI botnet membership (third-party infrastructure shared by unrelated
customers), stock-mining-tool attribution via exact-hash and fuzzy-hash
matching, obfuscation status (>= 80% of samples packed/high-entropy),
activity period and pool usage.
"""

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set

from repro.core.aggregation import Campaign
from repro.core.profit import WalletProfile
from repro.corpus.model import SampleRecord
from repro.intel.vt import VtService
from repro.osint.feeds import PPI_BOTNETS
from repro.osint.stock_tools import StockToolCatalog

#: a campaign is "obfuscated" when this fraction of samples is (§IV-E).
OBFUSCATED_CAMPAIGN_RATIO = 0.8

#: the paper's conservative fuzzy-hash distance for tool attribution.
STOCK_TOOL_DISTANCE = 0.1


class CampaignEnricher:
    """Adds the informative (non-grouping) annotations to campaigns."""

    def __init__(self, vt: VtService, catalog: StockToolCatalog,
                 sample_lookup, fh_threshold: float = STOCK_TOOL_DISTANCE) -> None:
        """``sample_lookup(sha256) -> SampleRecord | None`` provides raw
        bytes for fuzzy matching of dropped binaries."""
        self._vt = vt
        self._catalog = catalog
        self._lookup = sample_lookup
        self._threshold = fh_threshold

    def enrich(self, campaign: Campaign,
               profiles: Optional[Dict[str, WalletProfile]] = None) -> None:
        """Annotate one campaign (PPI, tools, obfuscation, activity)."""
        self._tag_ppi(campaign)
        self._tag_stock_tools(campaign)
        self._tag_obfuscation(campaign)
        self._tag_activity(campaign, profiles or {})

    def enrich_all(self, campaigns: Iterable[Campaign],
                   profiles: Optional[Dict[str, WalletProfile]] = None) -> None:
        """Annotate every campaign in ``campaigns``."""
        for campaign in campaigns:
            self.enrich(campaign, profiles)

    # ------------------------------------------------------------------

    def _tag_ppi(self, campaign: Campaign) -> None:
        """PPI membership via AV labels (Virut / Ramnit / Nitol)."""
        found: Set[str] = set()
        for sha in campaign.sample_hashes:
            report = self._vt.get_report(sha)
            if report is None:
                continue
            for label in report.labels():
                for botnet in PPI_BOTNETS:
                    if botnet.matches_label(label):
                        found.add(botnet.name)
        campaign.ppi_botnets = sorted(found)
        campaign.uses_ppi = bool(found)

    def _tag_stock_tools(self, campaign: Campaign) -> None:
        """Attribute dropped binaries to stock frameworks.

        Exact SHA-256 hits are free; otherwise the dropped file's CTPH is
        compared against the whole catalog with the 0.1 threshold.
        """
        frameworks: Set[str] = set()
        candidates: Set[str] = set()
        for record in campaign.records:
            candidates.update(record.dropped)
        # samples themselves can *be* stock tools fetched from GitHub
        candidates.update(campaign.sample_hashes)
        size_lo, size_hi = self._catalog_size_range()
        matches: List[tuple] = []
        for sha in sorted(candidates):
            exact = self._catalog.by_hash(sha)
            if exact is not None:
                frameworks.add(exact.framework)
                matches.append((exact.framework, exact.version, sha))
                continue
            sample = self._lookup(sha)
            if sample is None:
                continue
            # fuzzy matching only pays off for binaries in the size
            # neighbourhood of real tool builds; CTPH cannot score
            # inputs whose block sizes are >1 octave apart anyway.
            if not size_lo <= len(sample.raw) <= size_hi:
                continue
            match = self._catalog.match(sample.raw,
                                        threshold=self._threshold)
            if match is not None:
                frameworks.add(match[0].framework)
                matches.append((match[0].framework, match[0].version, sha))
        campaign.stock_tools = sorted(frameworks)
        campaign.stock_tool_matches = matches

    def _catalog_size_range(self):
        return self._catalog.size_range()

    def _tag_obfuscation(self, campaign: Campaign) -> None:
        packers: Counter = Counter()
        obfuscated_count = 0
        for record in campaign.records:
            if record.packer:
                packers[record.packer] += 1
            if record.obfuscated:
                obfuscated_count += 1
        campaign.packers = dict(packers)
        total = max(1, len(campaign.records))
        campaign.obfuscated = (
            obfuscated_count / total >= OBFUSCATED_CAMPAIGN_RATIO
            and obfuscated_count > 0
        )

    def _tag_activity(self, campaign: Campaign,
                      profiles: Dict[str, WalletProfile]) -> None:
        firsts = [r.first_seen for r in campaign.records if r.first_seen]
        campaign.first_seen = min(firsts) if firsts else None
        campaign.last_seen = max(firsts) if firsts else None
        pools: List[str] = []
        total_xmr = 0.0
        total_usd = 0.0
        last_share = None
        for identifier in campaign.identifiers:
            profile = profiles.get(identifier)
            if profile is None:
                continue
            total_xmr += profile.total_paid
            total_usd += profile.total_usd
            for pool in profile.pools:
                if pool not in pools:
                    pools.append(pool)
            if profile.last_share and (last_share is None
                                       or profile.last_share > last_share):
                last_share = profile.last_share
        # records can also name a pool no payments were observed at
        for record in campaign.records:
            if record.pool and record.pool not in pools:
                pools.append(record.pool)
        campaign.pools_used = pools
        campaign.total_xmr = total_xmr
        campaign.total_usd = total_usd
        campaign.last_share = last_share
