"""Disjoint-set forest shared by the streaming and sharded aggregators.

Extracted from :class:`repro.ingest.aggregator.IncrementalAggregator`
so the sharded campaign aggregation (:mod:`repro.scale.shards`) reuses
the exact same merge semantics.  The parent dict doubles as node
insertion order, which :meth:`components` preserves — a property the
ingest aggregator's equivalence tests rely on.
"""

from typing import Dict, Generic, Iterator, List, TypeVar

N = TypeVar("N")

__all__ = ["UnionFind"]


class UnionFind(Generic[N]):
    """Union-find with path compression and union by rank.

    ``merges`` counts distinct-root unions, i.e. how many times two
    components actually fused; redundant unions are free and uncounted.
    """

    __slots__ = ("_parent", "_rank", "merges")

    def __init__(self) -> None:
        self._parent: Dict[N, N] = {}
        self._rank: Dict[N, int] = {}
        self.merges = 0

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: N) -> bool:
        return node in self._parent

    def ensure(self, node: N) -> None:
        """Insert ``node`` as a singleton component if unseen."""
        if node not in self._parent:
            self._parent[node] = node
            self._rank[node] = 0

    def find(self, node: N) -> N:
        """Root of ``node``'s component (compresses the walked path)."""
        parent = self._parent
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    def union(self, a: N, b: N) -> bool:
        """Union the components of ``a`` and ``b``; True if they fused."""
        self.ensure(a)
        self.ensure(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self.merges += 1
        return True

    def nodes(self) -> Iterator[N]:
        """Every node, in insertion order."""
        return iter(self._parent)

    def num_components(self) -> int:
        """Current number of disjoint components."""
        return sum(1 for node in self._parent if self.find(node) == node)

    def components(self) -> List[List[N]]:
        """Components as node lists, ordered by first-node insertion."""
        grouped: Dict[N, List[N]] = {}
        for node in self._parent:
            grouped.setdefault(self.find(node), []).append(node)
        return list(grouped.values())
