"""Sanity checks (§III-B): is-executable, is-malware, is-miner.

The order matters and mirrors the paper: executability comes from the
magic number; malware status from AV positives (threshold 10) with two
carve-outs (the stock-tool hash whitelist, and the illicit-wallet
exception that keeps low-positive samples whose wallet also appears in
confirmed malware); miner status from YARA rules, Stratum IoCs, known
pool DNS, OSINT IoC matches, and the >=10 "Miner"-label query.
"""

from dataclasses import dataclass
from typing import Optional, Set

from repro.binfmt.format import ExecutableKind, magic_kind
from repro.corpus.model import SampleRecord
from repro.intel.vt import VtService
from repro.osint.feeds import OsintFeeds
from repro.perf.cache import cached_unpack
from repro.perf.scan import scan_context
from repro.pools.directory import PoolDirectory
from repro.sandbox.emulator import SandboxReport
from repro.yarm.builtin import builtin_miner_rules
from repro.yarm.engine import RuleSet

#: the paper's AV-positives threshold for calling a sample malware.
MALWARE_POSITIVES_THRESHOLD = 10

#: vendors that must label a sample "Miner" for the label-based check.
MINER_LABEL_THRESHOLD = 10


@dataclass
class SanityVerdict:
    """Outcome of the three checks for one sample."""

    sha256: str
    is_executable: bool = False
    is_malware: bool = False
    is_miner: bool = False
    used_wallet_exception: bool = False
    whitelisted_tool: bool = False
    reasons: Optional[str] = None

    @property
    def accepted(self) -> bool:
        return self.is_executable and self.is_malware and self.is_miner


class SanityChecker:
    """Stateful checker over a corpus (needs VT, OSINT and pool data)."""

    def __init__(self, vt: VtService, osint: OsintFeeds,
                 pools: PoolDirectory,
                 tool_whitelist: Optional[Set[str]] = None,
                 positives_threshold: int = MALWARE_POSITIVES_THRESHOLD,
                 rules: Optional[RuleSet] = None) -> None:
        self._vt = vt
        self._osint = osint
        self._pools = pools
        self._whitelist = tool_whitelist or set()
        self._threshold = positives_threshold
        self._rules = rules or builtin_miner_rules()
        #: wallets already confirmed inside >=threshold-positive malware;
        #: drives the illicit-wallet exception.
        self.confirmed_illicit_wallets: Set[str] = set()

    # -- individual checks -------------------------------------------------

    def is_executable(self, raw: bytes) -> bool:
        """Magic-number check: PE / ELF / JAR only."""
        return magic_kind(raw) in (ExecutableKind.PE, ExecutableKind.ELF,
                                   ExecutableKind.JAR)

    def is_malware(self, sha256: str,
                   sample_wallets: Optional[Set[str]] = None) -> bool:
        """AV-positives check with whitelist and wallet exception."""
        if sha256 in self._whitelist:
            return False
        report = self._vt.get_report(sha256)
        if report is None:
            return False
        if report.positives() >= self._threshold:
            return True
        if sample_wallets and (sample_wallets
                               & self.confirmed_illicit_wallets):
            return True
        return False

    def _scannable_bytes(self, raw: bytes) -> bytes:
        """Unpack known packers before rule scanning when possible.

        Backed by the content-keyed unpack memo, so static analysis of
        the same sample reuses this result instead of unpacking again.
        """
        return cached_unpack(raw)[0]

    def is_miner(self, sample: SampleRecord,
                 sandbox_report: Optional[SandboxReport] = None) -> bool:
        """Miner check: YARA, Stratum flows, pool DNS, labels, OSINT."""
        # (a) YARA rules over the shared (unpacked) scan context
        if self._rules.scan(scan_context(sample.raw)):
            return True
        # (b) dynamic IoCs: Stratum flows or known-pool DNS resolutions
        if sandbox_report is not None:
            if sandbox_report.flows.stratum_flows():
                return True
            for domain in sandbox_report.dns_queries:
                if self._pools.is_known_pool_domain(domain):
                    return True
        # (c) VT advanced queries: contacted pool domains / miner labels
        report = self._vt.get_report(sample.sha256)
        if report is not None:
            for domain in report.contacted_domains:
                if self._pools.is_known_pool_domain(domain):
                    return True
            if report.miner_label_count() >= MINER_LABEL_THRESHOLD:
                return True
        # (d) OSINT: hash appears in a known operation's IoC set
        if self._osint.operation_for_sample(sample.sha256) is not None:
            return True
        return False

    # -- combined -----------------------------------------------------------

    def check(self, sample: SampleRecord,
              sandbox_report: Optional[SandboxReport] = None,
              sample_wallets: Optional[Set[str]] = None) -> SanityVerdict:
        """Run all three checks on one sample; returns the verdict."""
        verdict = SanityVerdict(sha256=sample.sha256)
        verdict.whitelisted_tool = sample.sha256 in self._whitelist
        verdict.is_executable = self.is_executable(sample.raw)
        if not verdict.is_executable:
            verdict.reasons = "not an executable (magic number)"
            return verdict
        report = self._vt.get_report(sample.sha256)
        positives = report.positives() if report else 0
        verdict.is_malware = self.is_malware(sample.sha256, sample_wallets)
        if (verdict.is_malware and positives < self._threshold
                and not verdict.whitelisted_tool):
            verdict.used_wallet_exception = True
        if not verdict.is_malware:
            verdict.reasons = (
                "whitelisted mining tool" if verdict.whitelisted_tool
                else f"only {positives} AV positives"
            )
            return verdict
        verdict.is_miner = self.is_miner(sample, sandbox_report)
        if not verdict.is_miner:
            verdict.reasons = "no mining IoCs"
        return verdict

    def confirm_wallets(self, wallets: Set[str]) -> None:
        """Register wallets seen in confirmed malware (exception pool)."""
        self.confirmed_illicit_wallets |= wallets
