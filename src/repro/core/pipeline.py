"""End-to-end measurement pipeline (Figure 3 of the paper).

Orchestrates: sanity checks -> static/dynamic extraction -> the
illicit-wallet exception sweep -> ancillary recovery -> profit analysis
-> proxy identification -> campaign aggregation -> enrichment.
"""

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.aggregation import (
    Campaign,
    CampaignAggregator,
    GroupingPolicy,
)
from repro.core.dynamic_analysis import DynamicAnalyzer
from repro.core.enrichment import CampaignEnricher
from repro.core.extraction import ExtractionEngine
from repro.core.profit import ProfitAnalyzer, WalletProfile
from repro.core.records import MinerRecord
from repro.core.sanity import SanityChecker, SanityVerdict
from repro.core.static_analysis import StaticAnalyzer
from repro.corpus.model import SampleRecord, SyntheticWorld
from repro.sandbox.emulator import Sandbox, SandboxEnvironment


@dataclass
class PipelineStats:
    """Bookkeeping for Table III."""

    collected: int = 0
    executables: int = 0
    malware: int = 0
    miners: int = 0
    ancillaries: int = 0
    wallet_exception_hits: int = 0
    by_source: Dict[str, int] = field(default_factory=dict)
    sandbox_analyses: int = 0
    network_analyses: int = 0
    binary_analyses: int = 0

    @property
    def all_executables_kept(self) -> int:
        return self.miners + self.ancillaries


@dataclass
class MeasurementResult:
    """Everything the pipeline produced."""

    records: List[MinerRecord]
    campaigns: List[Campaign]
    profiles: Dict[str, WalletProfile]
    verdicts: Dict[str, SanityVerdict]
    stats: PipelineStats
    proxy_ips: Set[str]

    def miner_records(self) -> List[MinerRecord]:
        """Records classified as miners (TYPE == Miner)."""
        return [r for r in self.records if r.is_miner]

    def campaign_for_wallet(self, identifier: str) -> Optional[Campaign]:
        """The campaign holding ``identifier``, or None."""
        for campaign in self.campaigns:
            if identifier in campaign.identifiers:
                return campaign
        return None

    def xmr_campaigns(self) -> List[Campaign]:
        """Campaigns holding at least one Monero identifier."""
        return [c for c in self.campaigns if "XMR" in c.coins]

    def campaigns_with_payments(self) -> List[Campaign]:
        """Campaigns with observed pool payments (total XMR > 0)."""
        return [c for c in self.campaigns if c.total_xmr > 0]


class MeasurementPipeline:
    """The full measurement methodology against a (synthetic) world."""

    def __init__(self, world: SyntheticWorld,
                 policy: Optional[GroupingPolicy] = None,
                 positives_threshold: int = 10,
                 analysis_date: datetime.date = datetime.date(2018, 9, 1),
                 use_ha_reports: bool = True) -> None:
        self.world = world
        self._policy = policy or GroupingPolicy.full()
        sandbox = Sandbox(world.resolver, SandboxEnvironment(
            analysis_date=analysis_date))
        self._checker = SanityChecker(
            world.vt, world.osint, world.pool_directory,
            tool_whitelist=world.stock_catalog.whitelist_hashes(),
            positives_threshold=positives_threshold,
        )
        self._engine = ExtractionEngine(
            StaticAnalyzer(),
            DynamicAnalyzer(sandbox, world.ha if use_ha_reports else None),
            world.vt, world.pool_directory,
            world.resolver, world.passive_dns,
            analysis_date=analysis_date,
        )
        self._profit = ProfitAnalyzer(world.pool_directory)

    # ------------------------------------------------------------------

    def run(self) -> MeasurementResult:
        """Execute all pipeline stages; returns the measurement result."""
        stats = PipelineStats(collected=len(self.world.samples))
        verdicts: Dict[str, SanityVerdict] = {}
        records: Dict[str, MinerRecord] = {}
        deferred: List[SampleRecord] = []

        # -- stage 1: sanity + extraction for confirmed malware ---------
        for sample in self.world.samples:
            if not self._checker.is_executable(sample.raw):
                verdicts[sample.sha256] = SanityVerdict(
                    sample.sha256, is_executable=False,
                    reasons="not an executable")
                continue
            stats.executables += 1
            if not self._checker.is_malware(sample.sha256):
                deferred.append(sample)
                continue
            stats.malware += 1
            record, report = self._engine.extract_with_report(sample)
            stats.sandbox_analyses += 1
            if report is not None and len(report.flows):
                stats.network_analyses += 1
            if record.used_static:
                stats.binary_analyses += 1
            is_miner = (bool(record.identifiers)
                        or self._checker.is_miner(sample, report))
            verdict = SanityVerdict(
                sample.sha256, is_executable=True, is_malware=True,
                is_miner=is_miner,
                whitelisted_tool=False,
            )
            verdicts[sample.sha256] = verdict
            if is_miner:
                records[sample.sha256] = record
                self._checker.confirm_wallets(set(record.identifiers))

        # -- stage 2: illicit-wallet exception sweep ---------------------
        for sample in deferred:
            quick = self._engine.extract_static_only(sample)
            hit = set(quick.identifiers) & \
                self._checker.confirmed_illicit_wallets
            if not hit:
                verdicts[sample.sha256] = SanityVerdict(
                    sample.sha256, is_executable=True, is_malware=False,
                    reasons="below AV threshold")
                continue
            record, report = self._engine.extract_with_report(sample)
            stats.sandbox_analyses += 1
            stats.binary_analyses += 1
            verdicts[sample.sha256] = SanityVerdict(
                sample.sha256, is_executable=True, is_malware=True,
                is_miner=True, used_wallet_exception=True)
            stats.wallet_exception_hits += 1
            records[sample.sha256] = record

        # -- stage 3: ancillary recovery ---------------------------------
        self._recover_ancillaries(records, verdicts, stats)

        kept = list(records.values())
        for record in kept:
            if record.is_miner:
                stats.miners += 1
            else:
                stats.ancillaries += 1
            sample = self.world.sample_by_hash(record.sha256)
            if sample is not None:
                # feeds overlap (Appendix C): a sample counts toward
                # every feed that carries it, so per-source totals can
                # exceed the dataset size, exactly like Table III.
                for feed in sample.sources:
                    stats.by_source[feed] = stats.by_source.get(feed, 0) + 1

        # -- stage 4: profit analysis ------------------------------------
        identifiers = {
            identifier for record in kept
            for identifier in record.identifiers
        }
        profiles = self._profit.profile_many(sorted(identifiers))

        # -- stage 5: proxy identification --------------------------------
        proxy_ips = self._find_proxies(kept, profiles)

        # -- stage 6: aggregation ------------------------------------------
        aggregator = CampaignAggregator(self.world.osint, self._policy,
                                        proxy_ips=proxy_ips)
        campaigns = aggregator.aggregate(kept)

        # -- stage 7: enrichment --------------------------------------------
        enricher = CampaignEnricher(
            self.world.vt, self.world.stock_catalog,
            self.world.sample_by_hash,
        )
        enricher.enrich_all(campaigns, profiles)

        return MeasurementResult(
            records=kept,
            campaigns=campaigns,
            profiles=profiles,
            verdicts=verdicts,
            stats=stats,
            proxy_ips=proxy_ips,
        )

    # ------------------------------------------------------------------

    def _recover_ancillaries(self, records: Dict[str, MinerRecord],
                             verdicts: Dict[str, SanityVerdict],
                             stats: PipelineStats) -> None:
        """Pull in droppers/loaders linked to accepted miners (§III-E).

        A malware executable that failed the is-miner check still enters
        the dataset as an *ancillary* when it is a parent of an accepted
        sample, or an accepted sample dropped it.
        """
        # Dropper chains can be several hops long (dropper -> loader ->
        # miner), so recovery iterates to a fixpoint.
        while True:
            linked: Set[str] = set()
            for record in records.values():
                linked.update(record.parents)
                linked.update(record.dropped)
            # children of accepted samples, via VT parent metadata
            for sha in list(records):
                linked.update(self.world.vt.children_of(sha))
            added = False
            for sha in sorted(linked):
                if sha in records:
                    continue
                sample = self.world.sample_by_hash(sha)
                if sample is None:
                    continue
                if not self._checker.is_executable(sample.raw):
                    continue
                if not self._checker.is_malware(sample.sha256):
                    continue
                record, report = self._engine.extract_with_report(sample)
                stats.sandbox_analyses += 1
                record.type = "Miner" if record.identifiers else "Ancillary"
                records[sha] = record
                verdicts[sha] = SanityVerdict(
                    sha, is_executable=True, is_malware=True,
                    is_miner=bool(record.identifiers),
                    reasons=None if record.identifiers else "ancillary")
                added = True
            if not added:
                break

    def _find_proxies(self, records: List[MinerRecord],
                      profiles: Dict[str, WalletProfile]) -> Set[str]:
        """Proxy rule (§III-C): a sample mines against a non-pool IP but
        its wallet shows activity at a known (transparent) pool."""
        proxies: Set[str] = set()
        for record in records:
            if record.dst_ip is None or record.pool is not None:
                continue
            if record.dst_ip in ("0.0.0.0", "127.0.0.1"):
                continue  # unresolved-host sentinel, not a real endpoint
            host_is_ip = all(c.isdigit() or c == "."
                             for c in record.dst_ip)
            if not host_is_ip:
                continue
            for identifier in record.identifiers:
                profile = profiles.get(identifier)
                if profile is not None and profile.records:
                    proxies.add(record.dst_ip)
                    break
        return proxies
