"""End-to-end measurement pipeline (Figure 3 of the paper).

Orchestrates: sanity checks -> static/dynamic extraction -> the
illicit-wallet exception sweep -> ancillary recovery -> profit analysis
-> proxy identification -> campaign aggregation -> enrichment.

Per-sample extraction (stages 1 and 2) is independent until
aggregation, so it is sharded over a worker pool when ``workers > 1``
(see :mod:`repro.perf.parallel`); outcomes are merged in sample order,
which keeps parallel results bit-identical to the serial path.  A
:class:`~repro.perf.profiler.PipelineProfiler` times every stage.
"""

import datetime
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.common.net import is_ipv4_literal
from repro.core.aggregation import (
    Campaign,
    CampaignAggregator,
    GroupingPolicy,
)
from repro.core.dynamic_analysis import DynamicAnalyzer
from repro.core.enrichment import CampaignEnricher
from repro.core.extraction import ExtractionEngine
from repro.core.profit import ProfitAnalyzer, WalletProfile
from repro.core.records import MinerRecord
from repro.core.sanity import SanityChecker, SanityVerdict
from repro.core.static_analysis import StaticAnalyzer
from repro.corpus.model import SampleRecord, SyntheticWorld
from repro.perf.cache import CachingResolver
from repro.perf.parallel import (
    AnalysisSpec,
    ParallelExtractionEngine,
    SampleOutcome,
)
from repro.perf.profiler import PipelineProfiler
from repro.perf.scan import profiled_scan
from repro.sandbox.emulator import Sandbox, SandboxEnvironment

_DEFAULT_ANALYSIS_DATE = datetime.date(2018, 9, 1)


def build_analysis_components(
        world: SyntheticWorld,
        spec: AnalysisSpec) -> Tuple[SanityChecker, ExtractionEngine]:
    """The per-process sanity checker + extraction engine pair.

    Used both by the pipeline itself and by every pool worker, so a
    worker analyses samples with components identical to the serial
    path.  DNS resolution goes through a shared LRU memo.
    """
    resolver = CachingResolver(world.resolver)
    sandbox = Sandbox(resolver, SandboxEnvironment(
        analysis_date=spec.analysis_date))
    checker = SanityChecker(
        world.vt, world.osint, world.pool_directory,
        tool_whitelist=world.stock_catalog.whitelist_hashes(),
        positives_threshold=spec.positives_threshold,
    )
    engine = ExtractionEngine(
        StaticAnalyzer(),
        DynamicAnalyzer(sandbox, world.ha if spec.use_ha_reports else None),
        world.vt, world.pool_directory,
        resolver, world.passive_dns,
        analysis_date=spec.analysis_date,
    )
    return checker, engine


def linked_hashes(record: MinerRecord, vt) -> Set[str]:
    """Dropper-chain neighbours of one record (§III-E ancestry links):
    its parents, the binaries it dropped, and VT parent-metadata
    children of the sample itself."""
    linked: Set[str] = set(record.parents)
    linked.update(record.dropped)
    linked.update(vt.children_of(record.sha256))
    return linked


def analyze_linked_sample(
        sample: SampleRecord,
        engine: ExtractionEngine) -> Tuple[MinerRecord, SanityVerdict]:
    """Admit one dropper-linked executable into the dataset (§III-E).

    The caller has already established executability, malware status and
    the link to an accepted record; this runs the extraction and types
    the record Miner/Ancillary.  Shared by the batch pipeline's
    ancillary recovery and the streaming ingestion service.
    """
    record, _report = engine.extract_with_report(sample)
    record.type = "Miner" if record.identifiers else "Ancillary"
    verdict = SanityVerdict(
        sample.sha256, is_executable=True, is_malware=True,
        is_miner=bool(record.identifiers),
        reasons=None if record.identifiers else "ancillary")
    return record, verdict


def proxy_candidate_ip(record: MinerRecord) -> Optional[str]:
    """The non-pool IPv4 endpoint a record mined against, if any.

    First half of the proxy rule (§III-C); the second half — one of the
    record's wallets shows activity at a known transparent pool — needs
    profit profiles and is applied by the caller.
    """
    if record.dst_ip is None or record.pool is not None:
        return None
    if record.dst_ip in ("0.0.0.0", "127.0.0.1"):
        return None  # unresolved-host sentinel, not a real endpoint
    if not is_ipv4_literal(record.dst_ip):
        return None
    return record.dst_ip


@dataclass
class PipelineStats:
    """Bookkeeping for Table III."""

    collected: int = 0
    executables: int = 0
    malware: int = 0
    miners: int = 0
    ancillaries: int = 0
    wallet_exception_hits: int = 0
    by_source: Dict[str, int] = field(default_factory=dict)
    sandbox_analyses: int = 0
    network_analyses: int = 0
    binary_analyses: int = 0

    @property
    def all_executables_kept(self) -> int:
        return self.miners + self.ancillaries


@dataclass
class MeasurementResult:
    """Everything the pipeline produced."""

    records: List[MinerRecord]
    campaigns: List[Campaign]
    profiles: Dict[str, WalletProfile]
    verdicts: Dict[str, SanityVerdict]
    stats: PipelineStats
    proxy_ips: Set[str]

    def miner_records(self) -> List[MinerRecord]:
        """Records classified as miners (TYPE == Miner)."""
        return [r for r in self.records if r.is_miner]

    def campaign_for_wallet(self, identifier: str) -> Optional[Campaign]:
        """The campaign holding ``identifier``, or None.

        Backed by a lazily built identifier index; reporting layers
        call this per wallet, which made the old linear scan O(wallets
        x campaigns) on large worlds.
        """
        if not hasattr(self, "_campaign_by_identifier"):
            index: Dict[str, Campaign] = {}
            for campaign in self.campaigns:
                for held in campaign.identifiers:
                    index.setdefault(held, campaign)
            self._campaign_by_identifier = index
        return self._campaign_by_identifier.get(identifier)

    def xmr_campaigns(self) -> List[Campaign]:
        """Campaigns holding at least one Monero identifier."""
        return [c for c in self.campaigns if "XMR" in c.coins]

    def campaigns_with_payments(self) -> List[Campaign]:
        """Campaigns with observed pool payments (total XMR > 0)."""
        return [c for c in self.campaigns if c.total_xmr > 0]


def iter_result_records(result) -> Iterator[MinerRecord]:
    """Stream a result's records without materialising a list.

    Works across both result flavours: a store-backed result
    (:class:`repro.scale.pipeline.ScaleResult`, whose ``records`` is a
    materialising *method*) streams straight from its columnar
    segments; a batch :class:`MeasurementResult` iterates its in-memory
    list.  Exhibit, export and serving layers use this so they never
    force a million-record world into memory just to fold over it.
    """
    store = getattr(result, "store", None)
    if store is not None:
        return store.iter_records()
    return iter(result.records)


class MeasurementPipeline:
    """The full measurement methodology against a (synthetic) world.

    ``workers`` shards stage-1/stage-2 extraction over a process pool;
    ``workers=1`` (the default) runs everything in-process.  Both paths
    produce identical results.  ``profiler`` may be supplied to share
    one across runs; otherwise each pipeline owns one, exposed as
    :attr:`profiler`.
    """

    def __init__(self, world: SyntheticWorld,
                 policy: Optional[GroupingPolicy] = None,
                 positives_threshold: int = 10,
                 analysis_date: datetime.date = _DEFAULT_ANALYSIS_DATE,
                 use_ha_reports: bool = True,
                 workers: int = 1,
                 chunk_size: Optional[int] = None,
                 profiler: Optional[PipelineProfiler] = None,
                 record_store=None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.world = world
        self.workers = workers
        #: optional repro.scale.columnar.RecordStore (duck-typed to
        #: avoid a core -> scale import cycle); every run appends the
        #: kept record set as one columnar segment.
        self.record_store = record_store
        self.profiler = profiler or PipelineProfiler()
        self._policy = policy or GroupingPolicy.full()
        self._chunk_size = chunk_size
        self._spec = AnalysisSpec(
            positives_threshold=positives_threshold,
            analysis_date=analysis_date,
            use_ha_reports=use_ha_reports,
        )
        self._checker, self._engine = build_analysis_components(
            world, self._spec)
        self._profit = ProfitAnalyzer(world.pool_directory)

    # ------------------------------------------------------------------

    def run(self) -> MeasurementResult:
        """Execute all pipeline stages; returns the measurement result."""
        with profiled_scan(self.profiler):
            return self._run_stages()

    def _run_stages(self) -> MeasurementResult:
        prof = self.profiler
        stats = PipelineStats(collected=len(self.world.samples))
        verdicts: Dict[str, SanityVerdict] = {}
        records: Dict[str, MinerRecord] = {}
        deferred: List[SampleRecord] = []

        with ParallelExtractionEngine(
                self.world, self._spec, workers=self.workers,
                local_components=(self._checker, self._engine),
                chunk_size=self._chunk_size) as engine:
            # -- stage 1: sanity + extraction for confirmed malware -----
            with prof.stage("sanity + extraction",
                            items=len(self.world.samples)):
                outcomes = engine.map_stage1(
                    range(len(self.world.samples)))
                self._merge_stage1(outcomes, stats, verdicts, records,
                                   deferred)

            # -- stage 2: illicit-wallet exception sweep -----------------
            with prof.stage("wallet-exception sweep", items=len(deferred)):
                sweep = engine.map_stage2(
                    self._deferred_indices(deferred),
                    frozenset(self._checker.confirmed_illicit_wallets))
                self._merge_stage2(sweep, stats, verdicts, records)

            # -- stage 3: ancillary recovery -----------------------------
            with prof.stage("ancillary recovery"):
                self._recover_ancillaries(records, verdicts, stats)

            kept = list(records.values())

            if self.record_store is not None:
                with prof.stage("record store flush", items=len(kept)):
                    self.record_store.append_segment(kept)

            # -- warm the CTPH memo for enrichment (pooled runs) ---------
            if self.workers > 1:
                with prof.stage("fuzzy-hash precompute"):
                    warmed = self._warm_fuzzy_hashes(engine, kept)
                    prof.count("ctph_precomputed", warmed)

        with prof.stage("funnel accounting", items=len(kept)):
            for record in kept:
                if record.is_miner:
                    stats.miners += 1
                else:
                    stats.ancillaries += 1
                sample = self.world.sample_by_hash(record.sha256)
                if sample is not None:
                    # feeds overlap (Appendix C): a sample counts toward
                    # every feed that carries it, so per-source totals can
                    # exceed the dataset size, exactly like Table III.
                    for feed in sample.sources:
                        stats.by_source[feed] = \
                            stats.by_source.get(feed, 0) + 1

        # -- stage 4: profit analysis ------------------------------------
        identifiers = {
            identifier for record in kept
            for identifier in record.identifiers
        }
        with prof.stage("profit analysis", items=len(identifiers)):
            profiles = self._profit.profile_many(sorted(identifiers))

        # -- stage 5: proxy identification --------------------------------
        with prof.stage("proxy identification"):
            proxy_ips = self._find_proxies(kept, profiles)

        # -- stage 6: aggregation ------------------------------------------
        with prof.stage("aggregation", items=len(kept)):
            aggregator = CampaignAggregator(
                self.world.osint, self._policy, proxy_ips=proxy_ips)
            campaigns = aggregator.aggregate(kept)

        # -- stage 7: enrichment --------------------------------------------
        with prof.stage("enrichment", items=len(campaigns)):
            enricher = CampaignEnricher(
                self.world.vt, self.world.stock_catalog,
                self.world.sample_by_hash,
            )
            enricher.enrich_all(campaigns, profiles)

        return MeasurementResult(
            records=kept,
            campaigns=campaigns,
            profiles=profiles,
            verdicts=verdicts,
            stats=stats,
            proxy_ips=proxy_ips,
        )

    # ------------------------------------------------------------------
    # stage merges (order-preserving: identical to the serial loops)
    # ------------------------------------------------------------------

    def _deferred_indices(self, deferred: List[SampleRecord]) -> List[int]:
        index_of = {id(s): i for i, s in enumerate(self.world.samples)}
        return [index_of[id(s)] for s in deferred]

    def _merge_stage1(self, outcomes: List[SampleOutcome],
                      stats: PipelineStats,
                      verdicts: Dict[str, SanityVerdict],
                      records: Dict[str, MinerRecord],
                      deferred: List[SampleRecord]) -> None:
        for outcome in outcomes:
            if outcome.kind == "nonexec":
                verdicts[outcome.sha256] = outcome.verdict
                continue
            stats.executables += 1
            if outcome.kind == "deferred":
                deferred.append(self.world.samples[outcome.index])
                continue
            stats.malware += 1
            stats.sandbox_analyses += 1
            if outcome.has_network:
                stats.network_analyses += 1
            if outcome.used_static:
                stats.binary_analyses += 1
            verdicts[outcome.sha256] = outcome.verdict
            if outcome.kind == "miner":
                records[outcome.sha256] = outcome.record
                self._checker.confirm_wallets(
                    set(outcome.record.identifiers))

    def _merge_stage2(self, outcomes: List[SampleOutcome],
                      stats: PipelineStats,
                      verdicts: Dict[str, SanityVerdict],
                      records: Dict[str, MinerRecord]) -> None:
        for outcome in outcomes:
            verdicts[outcome.sha256] = outcome.verdict
            if outcome.kind != "exception":
                continue
            stats.sandbox_analyses += 1
            stats.binary_analyses += 1
            stats.wallet_exception_hits += 1
            records[outcome.sha256] = outcome.record

    # ------------------------------------------------------------------

    def _warm_fuzzy_hashes(self, engine: ParallelExtractionEngine,
                           kept: List[MinerRecord]) -> int:
        """Fan the enrichment CTPH workload out over the pool.

        Stock-tool attribution hashes the whole catalog plus every
        fuzzy-match candidate; precomputing those digests in the worker
        pool turns the serial enrichment stage into cache hits.
        """
        catalog = self.world.stock_catalog
        size_lo, size_hi = catalog.size_range()
        candidates: Set[str] = set()
        for record in kept:
            candidates.add(record.sha256)
            candidates.update(record.dropped)
            candidates.update(record.parents)
        sample_hashes = []
        for sha in sorted(candidates):
            if catalog.by_hash(sha) is not None:
                continue
            sample = self.world.sample_by_hash(sha)
            if sample is None or not size_lo <= len(sample.raw) <= size_hi:
                continue
            sample_hashes.append(sha)
        return engine.warm_fuzzy_hashes(
            sample_hashes, range(len(catalog.binaries())))

    # ------------------------------------------------------------------

    def _recover_ancillaries(self, records: Dict[str, MinerRecord],
                             verdicts: Dict[str, SanityVerdict],
                             stats: PipelineStats) -> None:
        """Pull in droppers/loaders linked to accepted miners (§III-E).

        A malware executable that failed the is-miner check still enters
        the dataset as an *ancillary* when it is a parent of an accepted
        sample, or an accepted sample dropped it.

        Dropper chains can be several hops long (dropper -> loader ->
        miner), so recovery iterates to a fixpoint — but frontier-based:
        each wave only expands the records added by the previous wave
        instead of rescanning every accepted record (the old fixpoint
        was O(n^2) in the number of records).
        """
        frontier = list(records)
        while frontier:
            linked: Set[str] = set()
            for sha in frontier:
                linked.update(linked_hashes(records[sha], self.world.vt))
            frontier = []
            for sha in sorted(linked):
                if sha in records:
                    continue
                sample = self.world.sample_by_hash(sha)
                if sample is None:
                    continue
                if not self._checker.is_executable(sample.raw):
                    continue
                if not self._checker.is_malware(sample.sha256):
                    continue
                record, verdict = analyze_linked_sample(sample, self._engine)
                stats.sandbox_analyses += 1
                records[sha] = record
                verdicts[sha] = verdict
                frontier.append(sha)
                self.profiler.count("ancillaries_recovered")

    def _find_proxies(self, records: List[MinerRecord],
                      profiles: Dict[str, WalletProfile]) -> Set[str]:
        """Proxy rule (§III-C): a sample mines against a non-pool IP but
        its wallet shows activity at a known (transparent) pool."""
        proxies: Set[str] = set()
        for record in records:
            candidate = proxy_candidate_ip(record)
            if candidate is None:
                continue
            for identifier in record.identifiers:
                profile = profiles.get(identifier)
                if profile is not None and profile.records:
                    proxies.add(candidate)
                    break
        return proxies
