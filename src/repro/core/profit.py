"""Profit analysis (§III-D): pool polling and USD conversion.

Every extracted identifier is queried against every transparent pool (a
wallet can mine at several pools, so the paper queries "all the wallets
against all the pools").  Dated payments are converted at the day's
exchange rate; undated totals fall back to the 54 USD/XMR average.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import PoolError
from repro.common.simtime import Date
from repro.core.records import WalletRecord
from repro.market.rates import RATES, ExchangeRates
from repro.pools.directory import PoolDirectory
from repro.pools.pool import Transparency


@dataclass
class WalletProfile:
    """All mining activity observed for one identifier across pools."""

    identifier: str
    records: List[WalletRecord] = field(default_factory=list)

    @property
    def total_paid(self) -> float:
        """Total XMR paid (XMR-denominated pool records only)."""
        return sum(r.total_paid for r in self.records if r.coin == "XMR")

    def total_paid_in(self, coin: str) -> float:
        """Total paid in one coin across this wallet's pool records."""
        return sum(r.total_paid for r in self.records if r.coin == coin)

    @property
    def total_usd(self) -> float:
        return sum(r.usd for r in self.records)

    @property
    def pools(self) -> List[str]:
        return [r.pool for r in self.records]

    @property
    def num_payments(self) -> int:
        return sum(r.num_payments for r in self.records)

    @property
    def last_share(self) -> Optional[Date]:
        dates = [r.last_share for r in self.records if r.last_share]
        return max(dates) if dates else None

    def payments(self) -> List[Tuple[Date, float, str]]:
        """(date, amount, pool) for every dated payment."""
        out = []
        for record in self.records:
            for when, amount in record.payments:
                out.append((when, amount, record.pool))
        out.sort(key=lambda t: t[0])
        return out

    @property
    def active(self) -> bool:
        """Mined within the final month of the polling window."""
        import datetime
        last = self.last_share
        return last is not None and last >= datetime.date(2019, 4, 1)


class ProfitAnalyzer:
    """Polls pool APIs for wallet activity and computes USD values."""

    def __init__(self, pools: PoolDirectory,
                 rates: Optional[Dict[str, ExchangeRates]] = None,
                 query_date: Optional[Date] = None) -> None:
        self._pools = pools
        self._rates = rates or RATES
        self._query_date = query_date

    def profile_wallet(self, identifier: str,
                       coin: Optional[str] = "XMR") -> WalletProfile:
        """Query every transparent pool for one identifier."""
        profile = WalletProfile(identifier=identifier)
        for pool in self._pools.pools():
            if pool.config.transparency is Transparency.OPAQUE:
                continue  # minergate-style: nothing to scrape
            try:
                stats = pool.api_wallet_stats(identifier, self._query_date)
            except PoolError:
                continue
            if stats is None or (stats.total_paid == 0 and stats.hashes == 0):
                continue
            rates = self._rates.get(pool.config.coin)
            record = WalletRecord(
                pool=stats.pool,
                user=identifier,
                coin=pool.config.coin,
                hashes=stats.hashes,
                hashrate=stats.last_hashrate,
                last_share=stats.last_share,
                balance=stats.balance,
                total_paid=stats.total_paid,
                num_payments=stats.num_payments,
                date_query=self._query_date,
                payments=list(stats.payments or []),
                hashrate_history=list(stats.hashrate_history or []),
            )
            record.usd = self._to_usd(record, rates)
            profile.records.append(record)
        return profile

    def profile_many(self, identifiers: Iterable[str]) -> Dict[str, WalletProfile]:
        """Profile a batch of identifiers; only hits are returned."""
        out: Dict[str, WalletProfile] = {}
        for identifier in identifiers:
            profile = self.profile_wallet(identifier)
            if profile.records:
                out[identifier] = profile
        return out

    def _to_usd(self, record: WalletRecord,
                rates: Optional[ExchangeRates]) -> float:
        """Paper's conversion: per-payment historical rate when dated
        payments exist; the flat average for bare totals."""
        if rates is None:
            return 0.0
        if record.payments:
            usd = sum(rates.to_usd(amount, when)
                      for when, amount in record.payments)
            # payments may only cover a window; convert the uncovered
            # remainder at the coin's flat average (AVERAGE_XMR_USD
            # for XMR, the derived era average otherwise — previously
            # the non-XMR remainder converted at $0 and vanished).
            covered = sum(amount for _, amount in record.payments)
            remainder = max(0.0, record.total_paid - covered)
            if remainder > 0:
                usd += rates.to_usd(remainder, None)
            return usd
        return rates.to_usd(record.total_paid, None)
