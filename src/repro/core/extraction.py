"""Extraction engine: merge static + dynamic findings into Table I rows.

Also performs CNAME de-aliasing (§III-E): contacted domains that are not
themselves known pools are resolved (live DNS, then passive-DNS history)
and, when a CNAME chain lands on a known pool, the domain is recorded as
an alias and the record's POOL field is normalised to the real pool.
"""

import datetime
from typing import Dict, List, Optional, Set

from repro.common.simtime import Date
from repro.core.dynamic_analysis import DynamicAnalyzer, DynamicFindings
from repro.core.records import MinerRecord
from repro.core.static_analysis import StaticAnalyzer, StaticFindings
from repro.corpus.model import SampleRecord
from repro.intel.vt import VtService
from repro.netsim.dns import PassiveDns, Resolver
from repro.perf.cache import LruCache
from repro.pools.directory import PoolDirectory

_DEFAULT_ANALYSIS_DATE = datetime.date(2018, 9, 1)


class ExtractionEngine:
    """Per-sample extraction: static + dynamic + metadata + de-aliasing."""

    def __init__(self, static: StaticAnalyzer, dynamic: DynamicAnalyzer,
                 vt: VtService, pools: PoolDirectory,
                 resolver: Resolver, passive_dns: PassiveDns,
                 analysis_date: Date = _DEFAULT_ANALYSIS_DATE) -> None:
        self._static = static
        self._dynamic = dynamic
        self._vt = vt
        self._pools = pools
        self._resolver = resolver
        self._passive = passive_dns
        self._analysis_date = analysis_date
        #: alias domain -> pool name cache across samples
        self._alias_cache: Dict[str, Optional[str]] = {}
        #: static findings memo: wallet-exception hits are analysed
        #: twice (static-only sweep, then full extraction), and static
        #: analysis is pure per input, so reuse the findings by hash.
        self._static_cache = LruCache("static_findings", maxsize=4096)

    # ------------------------------------------------------------------

    def extract(self, sample: SampleRecord) -> MinerRecord:
        """Produce the merged record for one sample."""
        record, _report = self.extract_with_report(sample)
        return record

    def extract_with_report(self, sample: SampleRecord):
        """Extract and also return the sandbox report (for sanity checks)."""
        record = MinerRecord(sha256=sample.sha256, source=sample.source)
        static = self._static_findings(sample)
        dynamic = self._dynamic.analyze(sample)
        self._merge_static(record, static)
        self._merge_dynamic(record, dynamic)
        self._merge_metadata(record, sample)
        self._dealias(record)
        record.type = "Miner" if record.identifiers else "Ancillary"
        return record, dynamic.report

    def extract_static_only(self, sample: SampleRecord) -> MinerRecord:
        """Cheap static-only pass (used by the wallet-exception sweep)."""
        record = MinerRecord(sha256=sample.sha256, source=sample.source)
        static = self._static_findings(sample)
        self._merge_static(record, static)
        self._merge_metadata(record, sample)
        record.type = "Miner" if record.identifiers else "Ancillary"
        return record

    # ------------------------------------------------------------------

    def _static_findings(self, sample: SampleRecord) -> StaticFindings:
        return self._static_cache.get_or_compute(
            sample.sha256, lambda: self._static.analyze(sample.raw))

    def _merge_static(self, record: MinerRecord,
                      findings: StaticFindings) -> None:
        record.used_static = True
        record.packer = findings.packer
        record.entropy = findings.entropy
        record.obfuscated = findings.obfuscated
        for classified in findings.identifiers:
            self._add_identifier(record, classified.value,
                                 classified.ticker)
        for host, port in findings.stratum_urls:
            if record.url_pool is None:
                record.url_pool = f"stratum+tcp://{host}:{port}"
                record.dst_port = port

    def _merge_dynamic(self, record: MinerRecord,
                       findings: DynamicFindings) -> None:
        record.used_dynamic = True
        for classified in findings.identifiers:
            self._add_identifier(record, classified.value,
                                 classified.ticker)
        for host, port in findings.stratum_targets:
            url = f"stratum+tcp://{host}:{port}"
            if record.url_pool is None:
                record.url_pool = url
                record.dst_port = port
        for login, password, agent in findings.logins:
            if record.user is None:
                record.user = login
                record.password = password or None
                record.agent = agent or None
        if findings.nthreads is not None:
            record.nthreads = findings.nthreads
        record.dns_rr = sorted(
            set(record.dns_rr) | set(findings.contacted_domains))
        record.dropped = list(findings.dropped)
        if findings.dst_ips and record.dst_ip is None:
            record.dst_ip = findings.dst_ips[0]

    def _merge_metadata(self, record: MinerRecord,
                        sample: SampleRecord) -> None:
        report = self._vt.get_report(sample.sha256)
        if report is None:
            return
        record.first_seen = report.first_seen
        record.positives = report.positives()
        record.itw_urls = list(report.itw_urls)
        record.parents = list(report.parents)
        record.dns_rr = sorted(
            set(record.dns_rr) | set(report.contacted_domains))

    def _add_identifier(self, record: MinerRecord, value: str,
                        ticker: Optional[str]) -> None:
        if value not in record.identifiers:
            record.identifiers.append(value)
            record.identifier_coins.append(ticker)
            if record.user is None:
                record.user = value

    # ------------------------------------------------------------------
    # CNAME de-aliasing
    # ------------------------------------------------------------------

    def _dealias(self, record: MinerRecord) -> None:
        """Classify contacted hosts: known pool, alias of a pool, or other.

        The first known pool (direct or via alias) becomes the record's
        normalised POOL; alias domains are retained for aggregation.
        """
        hosts: List[str] = []
        if record.url_pool:
            host = record.url_pool.split("://", 1)[1].rsplit(":", 1)[0]
            hosts.append(host.lower())
        hosts.extend(record.dns_rr)
        seen: Set[str] = set()
        for host in hosts:
            if host in seen or not any(c.isalpha() for c in host):
                continue
            seen.add(host)
            pool = self._pools.pool_for_domain(host)
            if pool is not None:
                if record.pool is None:
                    record.pool = pool.config.name
                continue
            alias_pool = self._alias_target(host)
            if alias_pool is not None:
                if host not in record.cname_aliases:
                    record.cname_aliases.append(host)
                if record.pool is None:
                    record.pool = alias_pool

    def _alias_target(self, domain: str) -> Optional[str]:
        """Pool name a domain aliases, via live DNS then passive DNS."""
        if domain in self._alias_cache:
            return self._alias_cache[domain]
        result: Optional[str] = None
        live = self._resolver.resolve(domain, self._analysis_date)
        for target in live.cname_chain:
            pool = self._pools.pool_for_domain(target)
            if pool is not None:
                result = pool.config.name
                break
        if result is None:
            for target in self._passive.ever_cname_targets(domain):
                pool = self._pools.pool_for_domain(target)
                if pool is not None:
                    result = pool.config.name
                    break
        self._alias_cache[domain] = result
        return result
