"""The paper's measurement pipeline (the primary contribution).

Stages, in the order Figure 3 draws them:

1. :mod:`repro.core.sanity` — is it malware? a miner? an executable?
2. :mod:`repro.core.static_analysis` / :mod:`repro.core.dynamic_analysis`
   — extract wallets, pools, command lines, flows.
3. :mod:`repro.core.extraction` — merge into per-sample records
   (Table I schema).
4. :mod:`repro.core.profit` — query pool APIs for per-wallet payments
   (Table II schema) and convert to USD.
5. :mod:`repro.core.aggregation` — build the campaign graph and cut it
   into connected components.
6. :mod:`repro.core.enrichment` — post-aggregation tagging (PPI, stock
   tools, obfuscation) that must NOT influence grouping.
7. :mod:`repro.core.pipeline` — orchestration of all of the above.
"""

from repro.core.records import MinerRecord, WalletRecord
from repro.core.sanity import SanityChecker, SanityVerdict
from repro.core.extraction import ExtractionEngine
from repro.core.profit import ProfitAnalyzer, WalletProfile
from repro.core.aggregation import (
    Campaign,
    CampaignAggregator,
    GroupingPolicy,
)
from repro.core.enrichment import CampaignEnricher
from repro.core.pipeline import MeasurementPipeline, MeasurementResult

__all__ = [
    "MinerRecord",
    "WalletRecord",
    "SanityChecker",
    "SanityVerdict",
    "ExtractionEngine",
    "ProfitAnalyzer",
    "WalletProfile",
    "Campaign",
    "CampaignAggregator",
    "GroupingPolicy",
    "CampaignEnricher",
    "MeasurementPipeline",
    "MeasurementResult",
]
