"""Dataset export in the format of the paper's released repository.

The authors publish their measurement data (per-sample records shaped
like Table I, per-wallet records shaped like Table II, and per-campaign
summaries).  This module writes the same three artifacts from a
:class:`~repro.core.pipeline.MeasurementResult` so downstream tooling
built for the original release can consume reproduction output.
"""

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.aggregation import Campaign
from repro.core.pipeline import MeasurementResult, iter_result_records

_SAMPLE_FIELDS = [
    "SHA256", "POOL", "URLPOOL", "USER", "PASS", "NTHREADS", "AGENT",
    "DSTIP", "DSTPORT", "DNSRR", "SOURCE", "FS", "ITW_URL", "PACKER",
    "POSITIVES", "TYPE",
]

_WALLET_FIELDS = [
    "POOL", "USER", "HASHES", "HASHRATE", "LAST_SHARE", "BALANCE",
    "TOTAL_PAID", "NUM_PAYMENTS", "DATE_QUERY", "USD",
]


def export_samples_csv(result: MeasurementResult,
                       path: Union[str, Path]) -> int:
    """Write the Table I per-sample dataset; returns rows written."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_SAMPLE_FIELDS)
        writer.writeheader()
        for record in iter_result_records(result):
            writer.writerow({
                "SHA256": record.sha256,
                "POOL": record.pool or "",
                "URLPOOL": record.url_pool or "",
                "USER": record.user or "",
                "PASS": record.password or "",
                "NTHREADS": record.nthreads if record.nthreads else "",
                "AGENT": record.agent or "",
                "DSTIP": record.dst_ip or "",
                "DSTPORT": record.dst_port if record.dst_port else "",
                "DNSRR": "|".join(record.dns_rr),
                "SOURCE": record.source,
                "FS": record.first_seen.isoformat()
                if record.first_seen else "",
                "ITW_URL": "|".join(record.itw_urls),
                "PACKER": record.packer or "",
                "POSITIVES": record.positives,
                "TYPE": record.type,
            })
            rows += 1
    return rows


def export_wallets_csv(result: MeasurementResult,
                       path: Union[str, Path]) -> int:
    """Write the Table II per-wallet/per-pool dataset."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_WALLET_FIELDS)
        writer.writeheader()
        for profile in result.profiles.values():
            for record in profile.records:
                writer.writerow({
                    "POOL": record.pool,
                    "USER": record.user,
                    "HASHES": f"{record.hashes:.0f}",
                    "HASHRATE": f"{record.hashrate:.2f}",
                    "LAST_SHARE": record.last_share.isoformat()
                    if record.last_share else "",
                    "BALANCE": f"{record.balance:.6f}",
                    "TOTAL_PAID": f"{record.total_paid:.6f}",
                    "NUM_PAYMENTS": record.num_payments,
                    "DATE_QUERY": record.date_query.isoformat()
                    if record.date_query else "",
                    "USD": f"{record.usd:.2f}",
                })
                rows += 1
    return rows


def campaign_summary(campaign: Campaign) -> Dict:
    """One campaign's JSON-safe summary (release index / serve API).

    The shape the authors' released campaign index uses; the
    :mod:`repro.serve` ``/v1/campaign/{id}`` endpoint returns the same
    dict, so feed consumers can switch between file and API transports.
    """
    return {
        "campaign_id": campaign.campaign_id,
        "num_samples": campaign.num_samples,
        "num_wallets": campaign.num_wallets,
        "coins": sorted(campaign.coins),
        "total_xmr": round(campaign.total_xmr, 6),
        "total_usd": round(campaign.total_usd, 2),
        "pools": campaign.pools_used,
        "cname_aliases": sorted(campaign.cname_aliases),
        "proxies": sorted(campaign.proxies),
        "operations": sorted(campaign.operations),
        "ppi_botnets": campaign.ppi_botnets,
        "stock_tools": campaign.stock_tools,
        "obfuscated": campaign.obfuscated,
        "first_seen": campaign.first_seen.isoformat()
        if campaign.first_seen else None,
        "last_share": campaign.last_share.isoformat()
        if campaign.last_share else None,
        "active": campaign.active,
    }


def export_campaigns_json(result: MeasurementResult,
                          path: Union[str, Path]) -> int:
    """Write per-campaign summaries (the release's campaign index)."""
    path = Path(path)
    campaigns = [campaign_summary(c) for c in result.campaigns]
    with path.open("w") as handle:
        json.dump({"campaigns": campaigns}, handle, indent=1)
    return len(campaigns)


def export_all(result: MeasurementResult,
               directory: Union[str, Path]) -> Dict[str, int]:
    """Write the full release bundle into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return {
        "samples": export_samples_csv(result, directory / "samples.csv"),
        "wallets": export_wallets_csv(result, directory / "wallets.csv"),
        "campaigns": export_campaigns_json(
            result, directory / "campaigns.json"),
    }
