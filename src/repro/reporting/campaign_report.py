"""Per-campaign investigation reports (automating the §V writeups).

Given one recovered campaign, produce the markdown dossier an analyst
would assemble: identity and earnings, infrastructure (aliases, hosts,
proxies), attribution (stock tools, PPI, known operations), payment
timeline with fork/ban annotations, and the grouping evidence that
holds the campaign together.
"""

from typing import Dict, List, Optional

from repro.analysis.exhibits import (
    fig7_payment_timeline,
    monthly_payment_series,
)
from repro.analysis.graphs import campaign_graph, structure_metrics
from repro.common.simtime import POW_FORK_DATES
from repro.core.aggregation import Campaign
from repro.core.pipeline import MeasurementResult


def _fmt_xmr(value: float) -> str:
    return f"{value:,.1f} XMR"


def _fork_for_month(month: str) -> Optional[str]:
    for fork in POW_FORK_DATES:
        if fork.strftime("%Y-%m") == month:
            return fork.isoformat()
    return None


def render_campaign_report(result: MeasurementResult,
                           campaign: Campaign,
                           title: Optional[str] = None) -> str:
    """Render the markdown dossier for one campaign."""
    lines: List[str] = []
    name = title or f"Campaign C#{campaign.campaign_id}"
    lines.append(f"# {name}")
    lines.append("")

    # -- identity ------------------------------------------------------
    lines.append("## Identity")
    lines.append(f"- samples: {campaign.num_samples} "
                 f"({len(campaign.miner_records)} miners)")
    lines.append(f"- identifiers: {campaign.num_wallets} "
                 f"({', '.join(sorted(campaign.coins)) or 'none'})")
    for identifier in campaign.identifiers[:10]:
        lines.append(f"  - `{identifier[:16]}...`")
    period = "unknown"
    if campaign.first_seen:
        end = ("active" if campaign.active
               else (campaign.last_share.isoformat()
                     if campaign.last_share else "?"))
        period = f"{campaign.first_seen.isoformat()} to {end}"
    lines.append(f"- activity period: {period}")
    lines.append(f"- earnings: {_fmt_xmr(campaign.total_xmr)} "
                 f"(~${campaign.total_usd:,.0f})")
    lines.append("")

    # -- infrastructure --------------------------------------------------
    lines.append("## Infrastructure")
    lines.append(f"- pools used: {', '.join(campaign.pools_used) or '-'}")
    if campaign.cname_aliases:
        lines.append("- domain aliases fronting pools:")
        for alias in sorted(campaign.cname_aliases):
            lines.append(f"  - `{alias}`")
    if campaign.proxies:
        lines.append(f"- mining proxies: "
                     f"{', '.join(sorted(campaign.proxies))}")
    if campaign.hosting_ips:
        lines.append(f"- malware hosts (by IP): "
                     f"{', '.join(sorted(campaign.hosting_ips))}")
    if campaign.hosting_urls:
        lines.append("- hosting URLs (sample):")
        for url in sorted(campaign.hosting_urls)[:5]:
            lines.append(f"  - `{url}`")
    lines.append("")

    # -- attribution -------------------------------------------------------
    lines.append("## Attribution")
    lines.append(f"- known operations: "
                 f"{', '.join(campaign.operations) or 'none (novel)'}")
    lines.append(f"- PPI botnets: "
                 f"{', '.join(campaign.ppi_botnets) or 'none observed'}")
    if campaign.stock_tool_matches:
        lines.append("- stock mining tools:")
        for framework, version, sha in campaign.stock_tool_matches[:8]:
            lines.append(f"  - {framework} {version} (`{sha[:12]}...`)")
    else:
        lines.append("- stock mining tools: none attributed")
    if campaign.packers:
        packers = ", ".join(f"{name} x{count}"
                            for name, count in
                            sorted(campaign.packers.items(),
                                   key=lambda kv: -kv[1]))
        lines.append(f"- packers: {packers}"
                     + (" (campaign-level obfuscation)"
                        if campaign.obfuscated else ""))
    lines.append("")

    # -- payments ------------------------------------------------------------
    timeline = fig7_payment_timeline(result, campaign)
    if timeline:
        lines.append("## Payment timeline (XMR per month)")
        totals: Dict[str, float] = {}
        for series in monthly_payment_series(timeline).values():
            for month, amount in series.items():
                totals[month] = totals.get(month, 0.0) + amount
        peak = max(totals.values()) if totals else 0.0
        for month in sorted(totals):
            bar = "#" * max(1, int(totals[month] / peak * 30)) if peak \
                else ""
            annotation = ""
            fork = _fork_for_month(month)
            if fork:
                annotation = f"  <- PoW fork {fork}"
            lines.append(f"- {month}: {totals[month]:>10.1f}  "
                         f"{bar}{annotation}")
        lines.append("")

    # -- structure --------------------------------------------------------------
    metrics = structure_metrics(campaign_graph(campaign))
    lines.append("## Grouping evidence")
    lines.append(f"- graph: {metrics['nodes']} nodes, "
                 f"{metrics['edges']} edges")
    for key in sorted(metrics):
        if key.startswith("n_"):
            lines.append(f"  - {key[2:]}: {int(metrics[key])}")
    lines.append("")
    return "\n".join(lines)


def render_top_campaign_reports(result: MeasurementResult,
                                top: int = 3) -> str:
    """Dossiers for the highest-earning campaigns, concatenated."""
    campaigns = sorted((c for c in result.campaigns if c.total_xmr > 0),
                       key=lambda c: -c.total_xmr)[:top]
    return "\n---\n\n".join(
        render_campaign_report(result, campaign)
        for campaign in campaigns
    )
