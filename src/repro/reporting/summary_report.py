"""Full measurement report: every exhibit in one markdown document.

Assembles the dataset funnel, currency demographics, pool popularity,
top campaigns, infrastructure breakdown, case-study dossiers and the
headline figures into a single report structured like the paper's
evaluation section (§IV-§V).  ``python -m repro.cli fullreport`` writes
it to disk.
"""

from typing import List

from repro.analysis import (
    fig1_forum_trends,
    headline_monero_fraction,
    table3_dataset,
    table4_currencies,
    table7_pool_popularity,
    table8_top_campaigns,
    table9_stock_tools,
    table10_packers,
    table11_infrastructure,
    table15_email_pools,
)
from repro.analysis.exhibits import fork_dieoff, multi_pool_share
from repro.analysis.validation import aggregation_quality
from repro.core.pipeline import MeasurementResult
from repro.corpus.model import SyntheticWorld
from repro.reporting.campaign_report import render_campaign_report
from repro.reporting.render import (
    format_table,
    render_fig1,
    render_table4,
    render_table7,
    render_table8,
    render_table11,
)


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def render_measurement_report(world: SyntheticWorld,
                              result: MeasurementResult,
                              title: str = "Crypto-Mining Malware "
                                           "Measurement Report") -> str:
    """Render the complete markdown measurement report."""
    parts: List[str] = [f"# {title}", ""]

    # -- dataset -----------------------------------------------------------
    stats = result.stats
    parts.append("## Dataset (Table III)")
    parts.append("")
    parts.append(f"- collected: {stats.collected} samples")
    parts.append(f"- executables passing the magic check: "
                 f"{stats.executables}")
    parts.append(f"- kept after sanity checks: {stats.miners} miners + "
                 f"{stats.ancillaries} ancillaries")
    parts.append(f"- wallet-exception admissions: "
                 f"{stats.wallet_exception_hits}")
    rows = table3_dataset(result)
    parts.append("")
    parts.append("```")
    parts.append(format_table(["category", "count"],
                              [[k, v] for k, v in rows.items()]))
    parts.append("```")
    parts.append("")

    # -- underground economy -------------------------------------------------
    if world.forum_corpus is not None:
        parts.append(_section(
            "Underground forums (Fig. 1)",
            render_fig1(fig1_forum_trends(world.forum_corpus))))

    # -- currencies -----------------------------------------------------------
    parts.append(_section("Currencies (Table IV)",
                          render_table4(table4_currencies(result))))

    # -- pools ------------------------------------------------------------------
    parts.append(_section("Mining pools (Table VII)",
                          render_table7(table7_pool_popularity(result))))
    share = multi_pool_share(result, 1000.0)
    parts.append(f"Campaigns earning over 1K XMR using several pools: "
                 f"{share*100:.0f}% (paper: 97%).")
    emails = table15_email_pools(result)
    if emails:
        top_email_pool = max(emails, key=emails.get)
        parts.append(f"E-mail identifiers concentrate at "
                     f"{top_email_pool} ({emails[top_email_pool]} of "
                     f"{sum(emails.values())}), which publishes no "
                     "per-wallet statistics.")
    parts.append("")

    # -- campaigns ---------------------------------------------------------------
    parts.append(_section("Top campaigns (Table VIII)",
                          render_table8(table8_top_campaigns(result))))
    parts.append(_section(
        "Infrastructure by profit band (Table XI)",
        render_table11(table11_infrastructure(result))))
    dieoff = fork_dieoff(result)
    parts.append("PoW-fork die-off: "
                 + " / ".join(f"{d*100:.0f}%" for d in dieoff)
                 + " (paper: 72% / 89% / 96%).")
    parts.append("")

    # -- tooling -------------------------------------------------------------------
    tool_rows = table9_stock_tools(result)
    if tool_rows:
        parts.append(_section(
            "Stock mining tools (Table IX)",
            format_table(["tool", "#instances", "#versions", "#campaigns"],
                         [[r["tool"], r["instances"], r["versions"],
                           r["campaigns"]] for r in tool_rows])))
    packer_rows = table10_packers(result)
    parts.append(_section(
        "Packers (Table X)",
        format_table(["packer", "#samples"],
                     [[k, v] for k, v in packer_rows.items()])))

    # -- headline ----------------------------------------------------------------------
    headline = headline_monero_fraction(result)
    parts.append("## Headline (§IV-D)")
    parts.append("")
    parts.append(f"- illicit XMR observed: {headline['total_xmr']:,.0f}")
    parts.append(f"- circulating supply at cutoff: "
                 f"{headline['circulating_supply']:,.0f} XMR")
    parts.append(f"- share of circulating supply: "
                 f"{headline['fraction']*100:.2f}%")
    parts.append(f"- estimated value: ${headline['total_usd']:,.0f}")
    parts.append("")

    # -- methodology quality ---------------------------------------------------------------
    scores = aggregation_quality(world, result)
    parts.append("## Aggregation quality vs ground truth")
    parts.append("")
    parts.append(f"- pairwise precision: {scores.precision:.3f}")
    parts.append(f"- pairwise recall: {scores.recall:.3f}")
    parts.append(f"- campaigns: {scores.n_predicted_clusters} recovered "
                 f"vs {scores.n_true_clusters} true")
    parts.append("")

    # -- case studies ----------------------------------------------------------------------
    for truth in world.ground_truth:
        if truth.label is None:
            continue
        campaign = result.campaign_for_wallet(truth.identifiers[0])
        if campaign is not None:
            parts.append(render_campaign_report(result, campaign,
                                                title=truth.label))
    return "\n".join(parts)
