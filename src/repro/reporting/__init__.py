"""Plain-text renderers for the exhibit data structures."""

from repro.reporting.render import (
    format_table,
    render_fig1,
    render_table4,
    render_table7,
    render_table8,
    render_table11,
)

__all__ = [
    "format_table",
    "render_fig1",
    "render_table4",
    "render_table7",
    "render_table8",
    "render_table11",
]

# NOTE: the ingestion renderers live in repro.reporting.ingest_report
# and are imported directly (not re-exported here) to keep this package
# import light — they pull in the ingest subsystem.
