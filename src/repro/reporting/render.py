"""Text-table rendering for benchmark/example output."""

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for idx, cell in enumerate(row):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_fig1(shares: Dict[int, Dict[str, float]]) -> str:
    """Text rendering of the Fig. 1 per-coin forum shares."""
    coins = sorted({c for year in shares.values() for c in year})
    rows = []
    for year, per_coin in sorted(shares.items()):
        rows.append([year] + [f"{per_coin.get(c, 0.0):.2f}" for c in coins])
    return format_table(["year"] + coins, rows,
                        title="Fig 1: forum mining-thread share per coin")


def render_table4(data: Dict[str, object]) -> str:
    """Text rendering of Table IV (currencies and samples/year)."""
    rows = [[coin, count] for coin, count
            in data["campaigns_per_currency"].items()]
    rows.append(["Email", data["email_campaigns"]])
    rows.append(["Unknown", data["unknown_campaigns"]])
    rows.append(["Mixed", data["multi_currency_campaigns"]])
    left = format_table(["identifier", "#campaigns"], rows,
                        title="Table IV (left): campaigns per currency")
    year_rows = []
    years = sorted(set(data["samples_per_year"]["BTC"])
                   | set(data["samples_per_year"]["XMR"]))
    for year in years:
        year_rows.append([
            year,
            data["samples_per_year"]["BTC"].get(year, 0),
            data["samples_per_year"]["XMR"].get(year, 0),
        ])
    right = format_table(["year", "BTC", "XMR"], year_rows,
                         title="Table IV (right): samples per year")
    return left + "\n\n" + right


def render_table7(rows: List[Dict[str, object]]) -> str:
    """Text rendering of Table VII (pool popularity)."""
    return format_table(
        ["pool", "XMR mined", "#wallets", "USD"],
        [[r["pool"], f"{r['xmr_mined']:.0f}", r["wallets"],
          f"{r['usd']:.0f}"] for r in rows],
        title="Table VII: pool popularity among criminals",
    )


def render_table8(data: Dict[str, object]) -> str:
    """Text rendering of Table VIII plus the totals footer."""
    rows = [[r["campaign"], r["samples"], r["wallets"], r["start"],
             r["end"], f"{r['xmr']:.0f}", f"{r['usd']/1e6:.2f}M"]
            for r in data["rows"]]
    table = format_table(
        ["campaign", "#S", "#W", "start", "end", "XMR", "USD"],
        rows, title="Table VIII: top campaigns by XMR mined")
    summary = (
        f"\nALL-{data['campaigns_with_payments']}: "
        f"{data['total_xmr']:.0f} XMR, "
        f"{data['total_usd']/1e6:.1f}M USD; "
        f"top-10 share {data['top_share']*100:.1f}%, "
        f"top-1 share {data['top1_share']*100:.1f}%"
    )
    return table + summary


def render_table11(columns: Dict[str, Dict[str, float]]) -> str:
    """Text rendering of Table XI (features by profit band)."""
    feature_keys = ["#campaigns", "ppi", "stock_tool", "both",
                    "obfuscation", "cnames", "proxies",
                    "active_after_apr18", "active_after_oct18",
                    "active_after_mar19"]
    bands = list(columns)
    rows = []
    for key in feature_keys:
        row = [key]
        for band in bands:
            value = columns[band].get(key, 0.0)
            if key == "#campaigns":
                row.append(str(int(value)))
            else:
                row.append(f"{value*100:.1f}%")
        rows.append(row)
    return format_table(["feature"] + bands, rows,
                        title="Table XI: infrastructure by profit band")
