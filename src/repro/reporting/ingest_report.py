"""Plain-text renderers for streaming-ingestion telemetry.

Three views over one run's durable state: the per-batch metrics table
(``ingest``'s default output), a run summary with throughput and resume
provenance, and the checkpoint status report that ``status`` prints
without rebuilding the world.
"""

from typing import List

from repro.ingest.checkpoint import JournalReplay
from repro.ingest.service import BatchMetrics, IngestionResult
from repro.reporting.render import format_table


def render_batch_metrics(batches: List[BatchMetrics]) -> str:
    """Aligned table of per-batch ingestion metrics."""
    rows = []
    for m in batches:
        window = (f"{m.start.isoformat()}..{m.end.isoformat()}"
                  if m.start is not None and m.end is not None else "-")
        rows.append([
            m.batch_id, window, m.samples, m.analyzed, m.admitted,
            m.new_miners, m.promotions, m.recovered, m.campaign_merges,
            m.new_wallets, f"{m.profit_delta_xmr:.1f}",
            f"{m.wall_s:.3f}",
        ])
    return format_table(
        ["batch", "window", "samples", "analyzed", "admitted", "miners",
         "promoted", "recovered", "merges", "wallets", "dXMR", "wall_s"],
        rows, title="Per-batch ingestion metrics")


def render_ingest_summary(ingest: IngestionResult) -> str:
    """Run summary: funnel totals, throughput, resume provenance."""
    stats = ingest.result.stats
    analyzed = sum(m.analyzed for m in ingest.batches)
    wall = sum(m.wall_s for m in ingest.batches)
    throughput = analyzed / wall if wall > 0 else 0.0
    total_xmr = sum(c.total_xmr for c in ingest.result.campaigns)
    lines = [
        f"batches:     {len(ingest.batches)}/{ingest.total_batches}"
        + (f" (resumed at batch {ingest.resumed_from})"
           if ingest.resumed_from else ""),
        f"collected:   {stats.collected}",
        f"executables: {stats.executables}",
        f"malware:     {stats.malware}",
        f"miners:      {stats.miners}",
        f"ancillaries: {stats.ancillaries}",
        f"campaigns:   {len(ingest.result.campaigns)}",
        f"illicit XMR: {total_xmr:.0f}",
        f"throughput:  {analyzed} samples in {wall:.2f}s "
        f"({throughput:.0f}/s)",
    ]
    return "\n".join(lines)


def render_checkpoint_status(replay: JournalReplay) -> str:
    """Status report for one checkpoint directory (no world needed)."""
    lines = []
    snapshot = replay.snapshot
    if snapshot is None and not replay.committed and not replay.partial:
        return "empty checkpoint: no snapshot, no journal entries"
    if snapshot is not None:
        finalized = bool(snapshot.get("finalized"))
        lines.append(
            f"snapshot:    cursor={snapshot.get('cursor')} "
            f"seed={snapshot.get('seed')} scale={snapshot.get('scale')} "
            f"batch_days={snapshot.get('batch_days')}"
            + (" [finalized]" if finalized else ""))
        stats = snapshot.get("stats", {})
        lines.append(
            f"funnel:      collected={stats.get('collected', 0)} "
            f"executables={stats.get('executables', 0)} "
            f"malware={stats.get('malware', 0)} "
            f"miners={stats.get('miners', 0)} "
            f"ancillaries={stats.get('ancillaries', 0)}")
        lines.append(f"records:     {len(snapshot.get('records', []))} "
                     f"({len(snapshot.get('pending', []))} pending)")
    else:
        lines.append("snapshot:    none (journal only)")
    lines.append(f"journal:     {len(replay.committed)} committed "
                 f"batch(es) past the snapshot, "
                 f"{sum(len(v) for v in replay.partial.values())} "
                 f"in-flight outcome(s)")
    lines.append(f"next batch:  {replay.cursor}")
    metrics = [BatchMetrics.from_json(m)
               for m in (snapshot or {}).get("batches", [])]
    metrics += [BatchMetrics.from_json(m) for _, m in replay.commits]
    if metrics:
        last = metrics[-1]
        window = (f"{last.start.isoformat()}..{last.end.isoformat()}"
                  if last.start is not None and last.end is not None
                  else "-")
        lines.append(
            f"last batch:  #{last.batch_id} {window} "
            f"({last.samples} samples, {last.new_miners} miners, "
            f"{last.wall_s:.3f}s)")
    return "\n".join(lines)
