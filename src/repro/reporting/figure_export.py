"""Figure-series export: CSV data behind each plotted figure.

The text renderers print tables; figures (CDFs, time series, trend
lines) are better consumed by external plotting tools.  Each exporter
writes one tidy CSV whose columns match the figure's axes, so any
plotting stack (matplotlib, gnuplot, a spreadsheet) can regenerate the
paper's graphics from reproduction data.
"""

import csv
from pathlib import Path
from typing import Dict, Union

from repro.analysis.exhibits import (
    fig1_forum_trends,
    fig4_cdf,
    fig5_pools_per_campaign,
)
from repro.analysis.timeline import monthly_ecosystem_series
from repro.core.pipeline import MeasurementResult
from repro.forums.corpus import ForumCorpus

PathLike = Union[str, Path]


def export_fig1_series(corpus: ForumCorpus, path: PathLike) -> int:
    """Fig. 1: year, coin, share-of-threads rows."""
    shares = fig1_forum_trends(corpus)
    rows = 0
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["year", "coin", "share"])
        for year, per_coin in sorted(shares.items()):
            for coin, share in sorted(per_coin.items()):
                writer.writerow([year, coin, f"{share:.4f}"])
                rows += 1
    return rows


def export_fig4_series(result: MeasurementResult, path: PathLike) -> int:
    """Fig. 4: series, value, cumulative-fraction rows (CDF points)."""
    cdf = fig4_cdf(result)
    rows = 0
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "value", "cdf"])
        for series, values in cdf.items():
            n = len(values)
            for index, value in enumerate(values, start=1):
                writer.writerow([series, f"{value:.4f}",
                                 f"{index / n:.4f}"])
                rows += 1
    return rows


def export_fig5_series(result: MeasurementResult, path: PathLike) -> int:
    """Fig. 5: earnings-band, pool-count, campaign-count rows."""
    histograms = fig5_pools_per_campaign(result)
    rows = 0
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["band", "num_pools", "campaigns"])
        for band, histogram in histograms.items():
            for num_pools, count in sorted(histogram.items()):
                writer.writerow([band, num_pools, count])
                rows += 1
    return rows


def export_monthly_series(result: MeasurementResult,
                          path: PathLike) -> int:
    """Ecosystem monthly series: month, xmr, usd, wallets rows."""
    series = monthly_ecosystem_series(result)
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["month", "xmr_paid", "usd_paid", "wallets_paid"])
        for point in series:
            writer.writerow([point.month, f"{point.xmr_paid:.4f}",
                             f"{point.usd_paid:.2f}",
                             point.wallets_paid])
    return len(series)


def export_all_figures(result: MeasurementResult,
                       corpus: ForumCorpus,
                       directory: PathLike) -> Dict[str, int]:
    """Write every figure series into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return {
        "fig1": export_fig1_series(corpus, directory / "fig1_forums.csv"),
        "fig4": export_fig4_series(result, directory / "fig4_cdf.csv"),
        "fig5": export_fig5_series(result,
                                   directory / "fig5_pools.csv"),
        "monthly": export_monthly_series(
            result, directory / "monthly_series.csv"),
    }
