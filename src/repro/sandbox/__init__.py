"""Dynamic-analysis substrate: behaviour scripts and a sandbox emulator.

Real malware carries behaviour; our synthetic samples carry an explicit
*behaviour script* (drop files, spawn miner processes with command
lines, resolve pool domains, open Stratum connections, evade).  The
:class:`Sandbox` executes a script under an instrumented environment and
produces a :class:`SandboxReport` with exactly the artifact classes the
paper's dynamic analysis consumes (§III-C): process command lines,
dropped files, DNS resolutions and network flows.

Evasion is modelled faithfully: execution-stalling code can outlast the
sandbox timeout, sandbox fingerprinting can abort the payload, and idle
mining simply succeeds in a sandbox (no user input ever arrives) — all
three behaviours the paper discusses in §II and §VI.
"""

from repro.sandbox.behavior import (
    Action,
    BehaviorScript,
    CheckIdle,
    CheckSandbox,
    DnsQuery,
    DropFile,
    HttpGet,
    SpawnProcess,
    Stall,
    StratumSession,
)
from repro.sandbox.emulator import Sandbox, SandboxEnvironment, SandboxReport

__all__ = [
    "Action",
    "BehaviorScript",
    "CheckIdle",
    "CheckSandbox",
    "DnsQuery",
    "DropFile",
    "HttpGet",
    "SpawnProcess",
    "Stall",
    "StratumSession",
    "Sandbox",
    "SandboxEnvironment",
    "SandboxReport",
]
