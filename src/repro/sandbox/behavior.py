"""Behaviour scripts: the dynamic side of a synthetic sample.

A script is an ordered list of actions.  The corpus generator authors
these to match each actor's tradecraft (dropper chains, stock-tool
invocations, proxy connections, evasion), and the sandbox executes them.
"""

from dataclasses import dataclass, field
from typing import List


class Action:
    """Base class for behaviour actions (marker only)."""

    duration_s: float = 0.0


@dataclass(frozen=True)
class SpawnProcess(Action):
    """Start a process with a full command line (e.g. invoking xmrig)."""

    image: str
    cmdline: str
    duration_s: float = 0.5


@dataclass(frozen=True)
class DropFile(Action):
    """Write a file to disk; ``sha256`` links it to another sample."""

    filename: str
    sha256: str
    duration_s: float = 0.2


@dataclass(frozen=True)
class DnsQuery(Action):
    """Resolve a domain (recorded even when resolution fails)."""

    domain: str
    duration_s: float = 0.1


@dataclass(frozen=True)
class HttpGet(Action):
    """Fetch a URL (droppers downloading payloads or stock tools)."""

    url: str
    duration_s: float = 1.0


@dataclass(frozen=True)
class StratumSession(Action):
    """Open a Stratum mining connection and authenticate."""

    host: str                 # domain or raw IP
    port: int
    login: str
    password: str = "x"
    agent: str = "xmrig/2.8.1"
    algo: str = "cn/0"
    duration_s: float = 2.0


@dataclass(frozen=True)
class Stall(Action):
    """Execution-stalling code (Kolbitsch et al., the paper's [22])."""

    seconds: float

    @property
    def duration_s(self) -> float:  # type: ignore[override]
        return self.seconds


@dataclass(frozen=True)
class CheckSandbox(Action):
    """Fingerprint the environment; abort the payload when detected.

    ``detectability`` is the probability the check recognises the
    sandbox (wear-and-tear artifacts etc.); evaluated deterministically
    from the sample seed.
    """

    detectability: float = 0.5
    duration_s: float = 0.3


@dataclass(frozen=True)
class CheckIdle(Action):
    """Idle-mining gate: proceed only when no user input is observed.

    In a sandbox nobody moves the mouse, so the gate *passes* — idle
    mining evades users, not analysts (§I).
    """

    duration_s: float = 0.1


@dataclass
class BehaviorScript:
    """Ordered behaviour of one sample."""

    actions: List[Action] = field(default_factory=list)

    def append(self, action: Action) -> "BehaviorScript":
        """Append one action; returns self for chaining."""
        self.actions.append(action)
        return self

    def __iter__(self):
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def stratum_sessions(self) -> List[StratumSession]:
        """Only the Stratum-session actions of the script."""
        return [a for a in self.actions if isinstance(a, StratumSession)]
