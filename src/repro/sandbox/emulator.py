"""The sandbox emulator.

Executes a :class:`~repro.sandbox.behavior.BehaviorScript` under a
virtual clock and produces a :class:`SandboxReport`.  Determinism: all
probabilistic outcomes (sandbox-detection rolls) derive from the sample
hash, so the same sample always behaves the same way.
"""

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.simtime import Date
from repro.netsim.dns import Resolver
from repro.netsim.flows import FlowLog, FlowRecord
from repro.sandbox.behavior import (
    BehaviorScript,
    CheckIdle,
    CheckSandbox,
    DnsQuery,
    DropFile,
    HttpGet,
    SpawnProcess,
    Stall,
    StratumSession,
)


@dataclass
class SandboxEnvironment:
    """Analysis-environment knobs.

    ``timeout_s`` mirrors the few-minute budget of real sandboxes —
    execution-stalling malware that sleeps past it hides its payload.
    ``hardened`` environments (bare-metal style, the paper's [7])
    defeat fingerprinting checks entirely.
    """

    timeout_s: float = 300.0
    is_sandbox: bool = True
    hardened: bool = False
    analysis_date: Optional[Date] = None


@dataclass
class SandboxReport:
    """Everything dynamic analysis observed for one execution."""

    sample_sha256: str
    processes: List[str] = field(default_factory=list)       # command lines
    images: List[str] = field(default_factory=list)          # process images
    dropped_files: List[str] = field(default_factory=list)   # sha256 of drops
    dns_queries: List[str] = field(default_factory=list)
    flows: FlowLog = field(default_factory=FlowLog)
    http_urls: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    timed_out: bool = False
    aborted_by_evasion: bool = False
    actions_executed: int = 0

    @property
    def complete(self) -> bool:
        """Whether the whole script ran inside the analysis budget."""
        return not self.timed_out and not self.aborted_by_evasion


class Sandbox:
    """Executes behaviour scripts against a simulated network."""

    def __init__(self, resolver: Optional[Resolver] = None,
                 environment: Optional[SandboxEnvironment] = None) -> None:
        self._resolver = resolver
        self.environment = environment or SandboxEnvironment()

    def run(self, sample_sha256: str, script: BehaviorScript) -> SandboxReport:
        """Execute ``script``; returns the analysis report."""
        env = self.environment
        report = SandboxReport(sample_sha256=sample_sha256)
        for index, action in enumerate(script):
            if report.elapsed_s + action.duration_s > env.timeout_s:
                report.timed_out = True
                break
            report.elapsed_s += action.duration_s
            if isinstance(action, CheckSandbox):
                if self._detects_sandbox(sample_sha256, index, action):
                    report.aborted_by_evasion = True
                    report.actions_executed += 1
                    break
            elif isinstance(action, CheckIdle):
                pass  # sandbox is always idle: gate passes
            elif isinstance(action, Stall):
                pass  # time already charged above
            elif isinstance(action, SpawnProcess):
                report.processes.append(action.cmdline)
                report.images.append(action.image)
            elif isinstance(action, DropFile):
                report.dropped_files.append(action.sha256)
            elif isinstance(action, DnsQuery):
                report.dns_queries.append(action.domain.lower())
            elif isinstance(action, HttpGet):
                report.http_urls.append(action.url)
            elif isinstance(action, StratumSession):
                self._run_stratum(action, report)
            else:
                raise TypeError(f"unknown action type: {type(action).__name__}")
            report.actions_executed += 1
        return report

    # -- helpers -----------------------------------------------------------

    def _detects_sandbox(self, sample_sha256: str, index: int,
                         action: CheckSandbox) -> bool:
        env = self.environment
        if not env.is_sandbox or env.hardened:
            return False
        digest = hashlib.sha256(
            f"evasion:{sample_sha256}:{index}".encode("ascii")
        ).digest()
        roll = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        return roll < action.detectability

    def _run_stratum(self, action: StratumSession,
                     report: SandboxReport) -> None:
        dst_ip = action.host
        dst_host = ""
        if any(c.isalpha() for c in action.host):
            dst_host = action.host.lower()
            report.dns_queries.append(dst_host)
            dst_ip = "0.0.0.0"
            if self._resolver is not None and self.environment.analysis_date:
                result = self._resolver.resolve(
                    dst_host, self.environment.analysis_date
                )
                if result.ip:
                    dst_ip = result.ip
        excerpt = (
            '{"method":"login","params":{"login":"%s","pass":"%s",'
            '"agent":"%s"}}' % (action.login, action.password, action.agent)
        )
        report.flows.record(FlowRecord(
            dst_host=dst_host,
            dst_ip=dst_ip,
            dst_port=action.port,
            protocol="stratum",
            login=action.login,
            password=action.password,
            agent=action.agent,
            payload_excerpt=excerpt,
        ))
