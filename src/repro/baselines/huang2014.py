"""The Huang et al. (NDSS 2014) blockchain-assisted baseline.

Their methodology over Bitcoin-mining malware: extract wallets from
~2K samples, then use the *public ledger* to (a) read each wallet's
lifetime income directly and (b) cluster wallets into operations with
the common-input-ownership heuristic.  Both steps need a transparent
chain; this module runs them against the reproduction's BTC ledger and
demonstrates the failure mode on Monero (opaque ledger), which is what
forces the paper's pool-side profit methodology.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.chain.btc_ledger import BtcLedger, OpaqueLedger
from repro.common.errors import ReproError
from repro.common.rng import DeterministicRNG
from repro.corpus.model import SyntheticWorld
from repro.market.rates import RATES


__all__ = [
    "Huang2014Result",
    "attempt_on_monero",
    "build_btc_ledger_from_world",
    "run_huang2014_baseline",
]


@dataclass
class Huang2014Result:
    """What the baseline recovered."""

    wallets_analyzed: int = 0
    total_btc: float = 0.0
    total_usd: float = 0.0
    clusters: List[Set[str]] = field(default_factory=list)
    per_wallet_btc: Dict[str, float] = field(default_factory=dict)

    @property
    def operations(self) -> int:
        return len(self.clusters)


def build_btc_ledger_from_world(world: SyntheticWorld,
                                seed: int = 11) -> BtcLedger:
    """Materialise the public BTC ledger for the world's BTC campaigns.

    Pool payouts become coinbase-style transactions; wallets of the
    same campaign occasionally co-spend (consolidating earnings), which
    is exactly the signal the common-input heuristic exploits.
    """
    rng = DeterministicRNG(seed, "btc-ledger")
    ledger = BtcLedger()
    tx_counter = 0
    for campaign in world.ground_truth:
        if campaign.coin != "BTC" or not campaign.pools:
            continue
        pool = world.pool_directory.get(campaign.pools[0])
        for wallet in campaign.identifiers:
            account = pool._account(wallet)
            for when, amount in account.payments:
                tx_counter += 1
                ledger.payout(f"tx{tx_counter:08d}", when,
                              f"pool:{pool.config.name}", wallet, amount)
        # consolidation: multi-wallet campaigns sweep into one address
        funded = [w for w in campaign.identifiers
                  if ledger.balance_received(w) > 0]
        if len(funded) >= 2 and rng.bernoulli(0.8):
            tx_counter += 1
            from repro.chain.btc_ledger import Transaction
            sweep_total = sum(ledger.balance_received(w) for w in funded)
            ledger.append(Transaction(
                f"tx{tx_counter:08d}",
                campaign.end or campaign.start,
                tuple(funded),
                ((funded[0], sweep_total),),
            ))
    return ledger


def run_huang2014_baseline(world: SyntheticWorld,
                           wallets: List[str]) -> Huang2014Result:
    """Run the 2014 methodology over extracted BTC wallets."""
    ledger = build_btc_ledger_from_world(world)
    result = Huang2014Result()
    rates = RATES["BTC"]
    for wallet in wallets:
        btc = ledger.balance_received(wallet)
        if btc <= 0:
            continue
        result.wallets_analyzed += 1
        result.per_wallet_btc[wallet] = btc
        result.total_btc += btc
        # value at receipt time, like Huang et al.'s USD estimates
        for tx in ledger.transactions_of(wallet):
            for out_wallet, amount in tx.outputs:
                if out_wallet == wallet and tx.inputs[0].startswith("pool:"):
                    result.total_usd += rates.to_usd(amount, tx.when)
    known = set(result.per_wallet_btc)
    result.clusters = [
        cluster & known
        for cluster in ledger.cluster_by_cospend()
        if cluster & known
    ]
    return result


def attempt_on_monero(wallets: List[str]) -> str:
    """Show why the 2014 methodology cannot cover Monero.

    Returns the error message the opaque ledger raises — the pivot
    point to the paper's pool-side approach.
    """
    ledger = OpaqueLedger()
    try:
        for wallet in wallets[:1]:
            ledger.balance_received(wallet)
    except ReproError as exc:
        return str(exc)
    return "unexpectedly succeeded"
