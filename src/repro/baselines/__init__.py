"""Baseline methodologies the paper compares against (§VII).

* :mod:`repro.baselines.huang2014` — blockchain-assisted clustering and
  profit estimation over a transparent (Bitcoin-style) ledger, the
  method of Huang et al. (NDSS 2014).  It works on BTC campaigns and
  fails — by construction — on CryptoNote coins, motivating the paper's
  pool-side methodology.
* Wallet-only clustering (Hong/Kharraz-style) is the other baseline;
  it is built into the pipeline as
  :meth:`repro.core.aggregation.GroupingPolicy.wallet_only`.
"""

from repro.baselines.huang2014 import (
    Huang2014Result,
    run_huang2014_baseline,
    build_btc_ledger_from_world,
)

__all__ = [
    "Huang2014Result",
    "run_huang2014_baseline",
    "build_btc_ledger_from_world",
]
