"""Known-operation and PPI-botnet indicator feeds."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class KnownOperation:
    """A publicly reported mining operation and its IoCs.

    The paper collected IoCs for Photominer [29], Adylkuzz [18],
    Smominru [17], Xbooster [30], Jenkins [31] and Rocke [32]; the
    methodology "is designed to easily include data collected from new
    operations", which :meth:`OsintFeeds.register_operation` provides.
    """

    name: str
    domains: Set[str] = field(default_factory=set)
    wallets: Set[str] = field(default_factory=set)
    sample_hashes: Set[str] = field(default_factory=set)
    reference: str = ""

    def matches_domain(self, domain: str) -> bool:
        """Whether ``domain`` matches this operation's domain IoCs."""
        domain = domain.lower()
        return any(domain == d or domain.endswith("." + d) for d in self.domains)


#: The six operations with public reporting the paper ingests.
KNOWN_OPERATION_NAMES = (
    "Photominer", "Adylkuzz", "Smominru", "Xbooster", "Jenkins", "Rocke",
)


@dataclass(frozen=True)
class PpiBotnet:
    """A pay-per-install botnet family, identified by AV label tokens."""

    name: str
    label_tokens: tuple

    def matches_label(self, label: str) -> bool:
        """Whether an AV label names this PPI family."""
        lowered = label.lower()
        return any(token in lowered for token in self.label_tokens)


#: The three PPI families the paper observes (511 Virut, 46 Ramnit,
#: 27 Nitol samples).
PPI_BOTNETS: List[PpiBotnet] = [
    PpiBotnet("Virut", ("virut",)),
    PpiBotnet("Ramnit", ("ramnit",)),
    PpiBotnet("Nitol", ("nitol",)),
]


class OsintFeeds:
    """Aggregated OSINT state handed to the pipeline."""

    def __init__(self) -> None:
        self._operations: Dict[str, KnownOperation] = {
            name: KnownOperation(name) for name in KNOWN_OPERATION_NAMES
        }
        self.donation_wallets: Set[str] = set()

    # -- known operations -------------------------------------------------

    def register_operation(self, operation: KnownOperation) -> None:
        """Add (or replace) a reported operation and its IoCs."""
        self._operations[operation.name] = operation

    def operation(self, name: str) -> KnownOperation:
        """The operation named ``name`` (KeyError when unknown)."""
        return self._operations[name]

    def operations(self) -> List[KnownOperation]:
        """Every registered operation."""
        return list(self._operations.values())

    def operation_for_sample(self, sha256: str) -> Optional[KnownOperation]:
        """Operation listing this sample hash as an IoC, or None."""
        for op in self._operations.values():
            if sha256 in op.sample_hashes:
                return op
        return None

    def operation_for_wallet(self, wallet: str) -> Optional[KnownOperation]:
        """Operation listing this wallet as an IoC, or None."""
        for op in self._operations.values():
            if wallet in op.wallets:
                return op
        return None

    def operation_for_domain(self, domain: str) -> Optional[KnownOperation]:
        """Operation whose domain IoCs match, or None."""
        for op in self._operations.values():
            if op.matches_domain(domain):
                return op
        return None

    # -- donation whitelist -------------------------------------------------

    def whitelist_donation_wallet(self, wallet: str) -> None:
        """Add a developer donation wallet to the whitelist."""
        self.donation_wallets.add(wallet)

    def is_donation_wallet(self, wallet: str) -> bool:
        """Whether a wallet is on the donation whitelist."""
        return wallet in self.donation_wallets
