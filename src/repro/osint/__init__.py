"""OSINT substrate: public indicators of compromise.

Three public feeds the paper consumes:

* **Known mining operations** (Photominer, Adylkuzz, Smominru, Xbooster,
  Jenkins, Rocke) with their published IoCs — used as a *grouping*
  feature (§III-E "Known mining campaigns");
* **PPI botnets** (Virut, Ramnit, Nitol) — deliberately *not* used for
  grouping (third-party infrastructure shared by unrelated customers),
  only for post-aggregation enrichment;
* the **donation-wallet whitelist** manually compiled from stock-tool
  repositories (14 wallets), which prevents developer donation wallets
  from gluing unrelated campaigns together.
"""

from repro.osint.feeds import (
    KnownOperation,
    OsintFeeds,
    PPI_BOTNETS,
    PpiBotnet,
)
from repro.osint.stock_tools import (
    StockToolCatalog,
    ToolBinary,
    TOOL_FRAMEWORKS,
)

__all__ = [
    "KnownOperation",
    "OsintFeeds",
    "PPI_BOTNETS",
    "PpiBotnet",
    "StockToolCatalog",
    "ToolBinary",
    "TOOL_FRAMEWORKS",
]
