"""Catalog of stock mining software (Table IX).

The paper collects ~1K binaries of known mining tools from 13 frameworks
(xmrig, claymore, niceHash, ...), white-lists their hashes so they are
not counted as malware, extracts their donation wallets (14 white-listed
wallets), and attributes campaign drops to them via fuzzy hashing with a
<= 0.1 distance threshold.

Here each framework owns a seeded 4 KiB code base; consecutive versions
apply small cumulative byte patches, so adjacent versions are
fuzzy-similar while frameworks are mutually dissimilar.  Actor *forks*
(e.g. donation capability removed — §III-E) are additional small
mutations and stay within the match threshold of their origin version.
"""

import datetime
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.binfmt.codegen import pseudo_code
from repro.binfmt.format import ExecutableKind, build_binary
from repro.common.rng import DeterministicRNG
from repro.common.simtime import Date
from repro.fuzzyhash.ctph import FuzzyHash
from repro.perf.cache import cached_ctph
from repro.wallets.addresses import WalletFactory


@dataclass(frozen=True)
class _FrameworkSpec:
    name: str
    first_release: Date
    num_versions: int
    donation_wallets: int         # how many developer wallets it ships
    platforms: Tuple[str, ...] = ("win64", "linux64")
    release_cadence_days: int = 30


#: The 13 frameworks; version counts follow Table IX where stated.
TOOL_FRAMEWORKS: List[_FrameworkSpec] = [
    _FrameworkSpec("xmrig", datetime.date(2017, 4, 1), 59, 2),
    _FrameworkSpec("claymore", datetime.date(2014, 7, 1), 14, 1),
    _FrameworkSpec("niceHash", datetime.date(2014, 10, 1), 11, 1),
    _FrameworkSpec("learnMiner", datetime.date(2017, 9, 1), 2, 1),
    _FrameworkSpec("ccminer", datetime.date(2014, 5, 1), 1, 0),
    _FrameworkSpec("xmr-stak", datetime.date(2017, 1, 1), 25, 2),
    _FrameworkSpec("cast-xmr", datetime.date(2017, 10, 1), 5, 1),
    _FrameworkSpec("jceMiner", datetime.date(2018, 1, 1), 6, 1),
    _FrameworkSpec("srbMiner", datetime.date(2018, 2, 1), 8, 1),
    _FrameworkSpec("yam", datetime.date(2014, 9, 1), 4, 1),
    _FrameworkSpec("cpuminer-multi", datetime.date(2014, 6, 1), 10, 1),
    _FrameworkSpec("cgminer", datetime.date(2012, 1, 1), 12, 1),
    _FrameworkSpec("bfgminer", datetime.date(2012, 6, 1), 9, 1),
]

_CODE_SIZE = 4096
_PATCH_BYTES = 8


@dataclass
class ToolBinary:
    """One released build of a stock mining tool."""

    framework: str
    version: str
    version_index: int
    platform: str
    release_date: Date
    raw: bytes
    sha256: str
    donation_wallet: Optional[str]

    _fuzzy: Optional[FuzzyHash] = None

    @property
    def fuzzy(self) -> FuzzyHash:
        if self._fuzzy is None:
            # content-memoised: warmed by the pipeline's parallel
            # precompute stage and shared across catalog rebuilds.
            self._fuzzy = cached_ctph(self.raw)
        return self._fuzzy


class StockToolCatalog:
    """All known stock-tool builds, with whitelists and fuzzy matching."""

    def __init__(self, rng: DeterministicRNG,
                 frameworks: Optional[Sequence[_FrameworkSpec]] = None) -> None:
        self._rng = rng.substream("stock-tools")
        self._wallet_factory = WalletFactory(self._rng.substream("donations"))
        self._frameworks = list(frameworks if frameworks is not None
                                else TOOL_FRAMEWORKS)
        self._binaries: List[ToolBinary] = []
        self._by_hash: Dict[str, ToolBinary] = {}
        self._donation_wallets: Dict[str, List[str]] = {}
        self._build_catalog()

    # -- construction ------------------------------------------------------

    def _build_catalog(self) -> None:
        for spec in self._frameworks:
            code_rng = self._rng.substream(f"code:{spec.name}")
            base_code = bytearray(pseudo_code(code_rng, _CODE_SIZE))
            wallets = [
                self._wallet_factory.new_address("XMR")
                for _ in range(spec.donation_wallets)
            ]
            self._donation_wallets[spec.name] = wallets
            code = bytearray(base_code)
            for version_index in range(spec.num_versions):
                # Cumulative small patch: adjacent versions stay similar.
                patch_rng = self._rng.substream(
                    f"patch:{spec.name}:{version_index}")
                # One contiguous patch region per version: release diffs
                # are localised, which keeps adjacent versions within the
                # fuzzy-match threshold, as with real tool releases.
                pos = patch_rng.randint(0, _CODE_SIZE - _PATCH_BYTES - 1)
                code[pos:pos + _PATCH_BYTES] = patch_rng.randbytes(_PATCH_BYTES)
                version = self._version_string(spec, version_index)
                release = spec.first_release + datetime.timedelta(
                    days=version_index * self._cadence(spec))
                for platform in spec.platforms:
                    binary = self._build_binary(
                        spec, version, version_index, platform, release,
                        bytes(code), wallets,
                    )
                    self._binaries.append(binary)
                    self._by_hash[binary.sha256] = binary

    @staticmethod
    def _cadence(spec: _FrameworkSpec) -> int:
        """Release cadence clamped so the series ends inside the window."""
        window_end = datetime.date(2019, 4, 30)
        available = max(1, (window_end - spec.first_release).days)
        if spec.num_versions <= 1:
            return spec.release_cadence_days
        fit = max(1, available // (spec.num_versions - 1))
        return min(spec.release_cadence_days, fit)

    @staticmethod
    def _version_string(spec: _FrameworkSpec, index: int) -> str:
        major = 1 + index // 20
        minor = (index // 5) % 4
        patch = index % 5
        return f"{major}.{minor}.{patch}"

    def _build_binary(self, spec: _FrameworkSpec, version: str,
                      version_index: int, platform: str, release: Date,
                      code: bytes, wallets: List[str]) -> ToolBinary:
        kind = ExecutableKind.ELF if "linux" in platform else ExecutableKind.PE
        donation = wallets[version_index % len(wallets)] if wallets else None
        strings = [
            f"{spec.name} {version} ({platform})",
            "stratum+tcp://",
            "--donate-level",
            "Usage: -o <pool> -u <wallet> -p <pass>",
        ]
        if donation:
            strings.append(f"donate: {donation}")
        raw = build_binary(kind, code=code, strings=strings)
        return ToolBinary(
            framework=spec.name,
            version=version,
            version_index=version_index,
            platform=platform,
            release_date=release,
            raw=raw,
            sha256=hashlib.sha256(raw).hexdigest(),
            donation_wallet=donation,
        )

    # -- queries -------------------------------------------------------------

    def binaries(self) -> List[ToolBinary]:
        """Every catalogued tool build."""
        return list(self._binaries)

    def __len__(self) -> int:
        return len(self._binaries)

    def frameworks(self) -> List[str]:
        """Names of the 13 mining frameworks."""
        return [spec.name for spec in self._frameworks]

    def whitelist_hashes(self) -> Set[str]:
        """SHA-256 whitelist: these binaries are tools, not malware."""
        return set(self._by_hash)

    def donation_wallets(self) -> Set[str]:
        """The donation-wallet whitelist (14 wallets in the paper)."""
        return {
            wallet
            for wallets in self._donation_wallets.values()
            for wallet in wallets
        }

    def by_hash(self, sha256: str) -> Optional[ToolBinary]:
        """The build with this SHA-256, or None."""
        return self._by_hash.get(sha256)

    def size_range(self) -> Tuple[int, int]:
        """Byte-size envelope ``(min // 2, max * 2)`` of catalog builds.

        Fuzzy attribution only pays off for binaries in the size
        neighbourhood of real tool builds; CTPH cannot score inputs
        whose block sizes are more than one octave apart anyway.
        """
        if not hasattr(self, "_size_range"):
            sizes = [len(b.raw) for b in self._binaries]
            self._size_range = ((min(sizes) // 2, max(sizes) * 2)
                                if sizes else (0, 0))
        return self._size_range

    def latest_version(self, framework: str,
                       as_of: Optional[Date] = None) -> Optional[ToolBinary]:
        """Newest build of ``framework`` released on or before ``as_of``."""
        candidates = [
            b for b in self._binaries
            if b.framework == framework
            and (as_of is None or b.release_date <= as_of)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda b: (b.version_index, b.platform))

    # -- fuzzy attribution ----------------------------------------------------

    def fork_tool(self, tool: ToolBinary, rng: DeterministicRNG,
                  strip_donation: bool = True) -> bytes:
        """Produce an actor fork of a stock tool (minor modifications).

        Mirrors the forks the paper observes: donation capability removed
        or small feature patches, close enough that fuzzy hashing still
        attributes the binary to the framework.
        """
        raw = bytearray(tool.raw)
        if strip_donation and tool.donation_wallet:
            needle = tool.donation_wallet.encode("ascii")
            idx = raw.find(needle)
            if idx >= 0:
                raw[idx:idx + len(needle)] = b"X" * len(needle)
        pos = rng.randint(len(raw) // 2, len(raw) - 5)
        raw[pos:pos + 4] = rng.randbytes(4)
        return bytes(raw)

    def _fuzzy_index(self):
        """blocksize -> [(signature, grams, tool)] over both signature
        octaves, built lazily on first fuzzy lookup."""
        from repro.fuzzyhash.ctph import signature_grams
        if not hasattr(self, "_fh_index"):
            index: Dict[int, list] = {}
            for binary in self._binaries:
                fh = binary.fuzzy
                index.setdefault(fh.blocksize, []).append(
                    (fh.signature, signature_grams(fh.signature), binary))
                index.setdefault(fh.blocksize * 2, []).append(
                    (fh.double_signature,
                     signature_grams(fh.double_signature), binary))
            self._fh_index = index
        return self._fh_index

    def match(self, data: bytes, threshold: float = 0.1) -> Optional[Tuple[ToolBinary, float]]:
        """Attribute ``data`` to the closest stock tool.

        Exact SHA-256 hits are free; otherwise the candidate's CTPH is
        compared against an index of catalog signatures (same or
        adjacent block size, common-gram prefilter, then edit distance).
        Returns (tool, distance) within ``threshold``, or None.
        """
        from repro.fuzzyhash.ctph import score_with_grams, signature_grams
        sha = hashlib.sha256(data).hexdigest()
        exact = self._by_hash.get(sha)
        if exact is not None:
            return exact, 0.0
        candidate = cached_ctph(data)
        index = self._fuzzy_index()
        probes = [
            (candidate.blocksize, candidate.signature),
            (candidate.blocksize * 2, candidate.double_signature),
        ]
        best: Optional[Tuple[ToolBinary, float]] = None
        for blocksize, signature in probes:
            grams = signature_grams(signature)
            if not grams:
                continue
            for cat_sig, cat_grams, binary in index.get(blocksize, []):
                score = score_with_grams(signature, grams, cat_sig,
                                         cat_grams, blocksize)
                dist = 1.0 - score / 100.0
                if dist <= threshold and (best is None or dist < best[1]):
                    best = (binary, dist)
        return best
