"""Exhibit generators: one function per table/figure of the paper.

Each function consumes a :class:`~repro.core.pipeline.MeasurementResult`
(and, where needed, the :class:`~repro.corpus.model.SyntheticWorld`) and
returns plain data structures (lists of rows / dicts of series) that the
renderers in :mod:`repro.reporting` turn into text tables.
"""

from repro.analysis.exhibits import (
    fig1_forum_trends,
    fig4_cdf,
    fig5_pools_per_campaign,
    fig6_campaign_structure,
    fig7_payment_timeline,
    headline_monero_fraction,
    table3_dataset,
    table4_currencies,
    table5_pre2014_reuse,
    table6_hosting_domains,
    table7_pool_popularity,
    table8_top_campaigns,
    table9_stock_tools,
    table10_packers,
    table11_infrastructure,
    table12_related_work,
    table14_top_wallets,
    table15_email_pools,
)
from repro.analysis.validation import (
    aggregation_quality,
    pairwise_clustering_scores,
)
from repro.analysis.graphs import campaign_graph, structure_metrics, to_dot
from repro.analysis.groundtruth_eval import (
    av_threshold_sweep,
    funnel_quality,
)
from repro.analysis.opacity import estimate_opacity_gap
from repro.analysis.rotation import detect_rotations
from repro.analysis.timeline import (
    active_campaigns_per_month,
    monthly_ecosystem_series,
)

__all__ = [
    "fig1_forum_trends",
    "fig4_cdf",
    "fig5_pools_per_campaign",
    "fig6_campaign_structure",
    "fig7_payment_timeline",
    "headline_monero_fraction",
    "table3_dataset",
    "table4_currencies",
    "table5_pre2014_reuse",
    "table6_hosting_domains",
    "table7_pool_popularity",
    "table8_top_campaigns",
    "table9_stock_tools",
    "table10_packers",
    "table11_infrastructure",
    "table12_related_work",
    "table14_top_wallets",
    "table15_email_pools",
    "aggregation_quality",
    "pairwise_clustering_scores",
    "campaign_graph",
    "structure_metrics",
    "to_dot",
    "av_threshold_sweep",
    "funnel_quality",
    "estimate_opacity_gap",
    "detect_rotations",
    "active_campaigns_per_month",
    "monthly_ecosystem_series",
]
