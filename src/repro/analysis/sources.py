"""Dataset-source overlap analysis (Appendix C).

The paper's four main feeds overlap: VT, Palo Alto, VirusShare and
Hybrid Analysis "together accounted for (at least) all the samples
observed in the remaining sources", and the per-feed counts of Table
III exceed the dataset size.  These functions compute the coverage and
pairwise-overlap structure from the kept samples.
"""

from collections import Counter
from itertools import combinations
from typing import Dict, Tuple

from repro.core.pipeline import MeasurementResult
from repro.corpus.model import SyntheticWorld


__all__ = [
    "exclusive_counts",
    "source_coverage",
    "source_overlap_matrix",
]


def source_coverage(world: SyntheticWorld,
                    result: MeasurementResult) -> Dict[str, float]:
    """Fraction of kept samples each feed carries."""
    kept = [world.sample_by_hash(r.sha256) for r in result.records]
    kept = [s for s in kept if s is not None]
    if not kept:
        return {}
    counts: Counter = Counter()
    for sample in kept:
        for feed in sample.sources:
            counts[feed] += 1
    return {feed: count / len(kept)
            for feed, count in counts.most_common()}


def source_overlap_matrix(world: SyntheticWorld,
                          result: MeasurementResult
                          ) -> Dict[Tuple[str, str], int]:
    """Samples carried by each *pair* of feeds (Appendix C structure)."""
    kept = [world.sample_by_hash(r.sha256) for r in result.records]
    kept = [s for s in kept if s is not None]
    overlap: Counter = Counter()
    for sample in kept:
        for a, b in combinations(sorted(set(sample.sources)), 2):
            overlap[(a, b)] += 1
    return dict(overlap)


def exclusive_counts(world: SyntheticWorld,
                     result: MeasurementResult) -> Dict[str, int]:
    """Samples only one feed carries (the marginal value of each feed)."""
    kept = [world.sample_by_hash(r.sha256) for r in result.records]
    counts: Counter = Counter()
    for sample in kept:
        if sample is not None and len(set(sample.sources)) == 1:
            counts[sample.sources[0]] += 1
    return dict(counts.most_common())
