"""Ecosystem-level time series (§VII: "more than 1M/month").

The paper distils its per-payment data into a monthly narrative: the
ecosystem's income ramps with the 2016-17 Monero rally, peaks around
the January 2018 price spike, and collapses under the combined weight
of the 2018 forks and the price crash.  These series make that
narrative queryable: XMR and USD per month, active campaigns per month,
and new-campaign starts per month.
"""

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.pipeline import MeasurementResult
from repro.market.rates import RATES


__all__ = [
    "MonthlyPoint",
    "active_campaigns_per_month",
    "average_monthly_usd",
    "campaign_starts_per_month",
    "monthly_ecosystem_series",
    "peak_month",
]


@dataclass(frozen=True)
class MonthlyPoint:
    """One month of ecosystem activity."""

    month: str              # "YYYY-MM"
    xmr_paid: float
    usd_paid: float
    wallets_paid: int


def monthly_ecosystem_series(result: MeasurementResult) -> List[MonthlyPoint]:
    """Month-by-month payments over every measured wallet."""
    xmr_by_month: Dict[str, float] = defaultdict(float)
    usd_by_month: Dict[str, float] = defaultdict(float)
    wallets_by_month: Dict[str, set] = defaultdict(set)
    rates = RATES["XMR"]
    for identifier, profile in result.profiles.items():
        for when, amount, pool in profile.payments():
            month = when.strftime("%Y-%m")
            xmr_by_month[month] += amount
            usd_by_month[month] += rates.to_usd(amount, when)
            wallets_by_month[month].add(identifier)
    return [
        MonthlyPoint(month=month,
                     xmr_paid=xmr_by_month[month],
                     usd_paid=usd_by_month[month],
                     wallets_paid=len(wallets_by_month[month]))
        for month in sorted(xmr_by_month)
    ]


def active_campaigns_per_month(result: MeasurementResult) -> Dict[str, int]:
    """Campaigns with at least one dated payment in each month."""
    active: Dict[str, set] = defaultdict(set)
    for campaign in result.campaigns:
        for identifier in campaign.identifiers:
            profile = result.profiles.get(identifier)
            if profile is None:
                continue
            for when, _amount, _pool in profile.payments():
                active[when.strftime("%Y-%m")].add(campaign.campaign_id)
    return {month: len(ids) for month, ids in sorted(active.items())}


def campaign_starts_per_month(result: MeasurementResult) -> Dict[str, int]:
    """New campaigns (by first-seen sample) per month."""
    starts: Dict[str, int] = defaultdict(int)
    for campaign in result.campaigns:
        if campaign.first_seen is not None:
            starts[campaign.first_seen.strftime("%Y-%m")] += 1
    return dict(sorted(starts.items()))


def average_monthly_usd(series: List[MonthlyPoint],
                        first: Optional[str] = None,
                        last: Optional[str] = None) -> float:
    """Mean USD/month over a month range (the paper's 1M/month figure)."""
    selected = [p for p in series
                if (first is None or p.month >= first)
                and (last is None or p.month <= last)]
    if not selected:
        return 0.0
    return sum(p.usd_paid for p in selected) / len(selected)


def peak_month(series: List[MonthlyPoint],
               key: str = "usd_paid") -> Optional[MonthlyPoint]:
    """The month with the highest value of ``key`` (None when empty)."""
    if not series:
        return None
    return max(series, key=lambda p: getattr(p, key))
