"""Aggregation-quality scoring against corpus ground truth.

The paper validates its campaign heuristics manually (§VI "Quality of
the aggregation"); the synthetic corpus lets us do it quantitatively.
Pairwise precision/recall over samples: a pair of samples is a true link
when both belong to the same ground-truth campaign; predicted links come
from the recovered clustering.
"""

from dataclasses import dataclass
from typing import Dict

from repro.core.pipeline import MeasurementResult
from repro.corpus.model import SyntheticWorld


@dataclass(frozen=True)
class ClusteringScores:
    """Pairwise clustering quality."""

    precision: float
    recall: float
    f1: float
    n_samples: int
    n_true_clusters: int
    n_predicted_clusters: int


def pairwise_clustering_scores(truth: Dict[str, int],
                               predicted: Dict[str, int]) -> ClusteringScores:
    """Pairwise P/R/F1 between two labelings over the same keys.

    Computed from cluster-size contingency counts (no O(n^2) pair
    enumeration): TP = sum over (true, pred) cells of C(n_ij, 2), etc.
    """
    common = set(truth) & set(predicted)
    cells: Dict[tuple, int] = {}
    true_sizes: Dict[int, int] = {}
    pred_sizes: Dict[int, int] = {}
    for key in common:
        t, p = truth[key], predicted[key]
        cells[(t, p)] = cells.get((t, p), 0) + 1
        true_sizes[t] = true_sizes.get(t, 0) + 1
        pred_sizes[p] = pred_sizes.get(p, 0) + 1

    def pairs(n: int) -> int:
        return n * (n - 1) // 2

    tp = sum(pairs(n) for n in cells.values())
    true_pairs = sum(pairs(n) for n in true_sizes.values())
    pred_pairs = sum(pairs(n) for n in pred_sizes.values())
    precision = tp / pred_pairs if pred_pairs else 1.0
    recall = tp / true_pairs if true_pairs else 1.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return ClusteringScores(
        precision=precision, recall=recall, f1=f1,
        n_samples=len(common),
        n_true_clusters=len(true_sizes),
        n_predicted_clusters=len(pred_sizes),
    )


def aggregation_quality(world: SyntheticWorld,
                        result: MeasurementResult) -> ClusteringScores:
    """Score the pipeline's campaign recovery against ground truth.

    Only samples the pipeline kept are scored (the sanity checks are
    evaluated separately); junk samples carry no ground-truth label and
    are excluded.
    """
    truth: Dict[str, int] = {}
    predicted: Dict[str, int] = {}
    for campaign in result.campaigns:
        for sha in campaign.sample_hashes:
            sample = world.sample_by_hash(sha)
            if sample is None or sample.true_campaign_id is None:
                continue
            truth[sha] = sample.true_campaign_id
            predicted[sha] = campaign.campaign_id
    return pairwise_clustering_scores(truth, predicted)
