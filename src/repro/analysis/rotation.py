"""Wallet-rotation detection from pool hashrate histories.

The paper notes that criminals rotate identifiers — "a change of a
previous wallet address after being banned" (Table IV discussion) — and
that minexmr publishes *historical* per-wallet hashrates (Table II).
Those two facts compose into an extension the paper stops short of: a
hand-over detector.  When wallet A's hashrate drops to ~zero in the
same window where wallet B's rises to a comparable level at the same
pool, the two wallets are plausibly one operator rotating identities.

The detector is *evidence*, not a grouping feature: it suggests links
for analyst review (the paper's conservative stance on aggregation).
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.simtime import Date
from repro.core.pipeline import MeasurementResult


__all__ = [
    "RotationCandidate",
    "detect_rotations",
    "score_against_campaigns",
]


@dataclass(frozen=True)
class RotationCandidate:
    """A suspected hand-over between two wallets at one pool."""

    pool: str
    from_wallet: str
    to_wallet: str
    handover_date: Date
    from_rate: float      # rate before the drop
    to_rate: float        # rate after the rise
    rate_similarity: float  # min/max of the two rates (1.0 = identical)


def _series_by_wallet(result: MeasurementResult,
                      pool: str) -> Dict[str, List[Tuple[Date, float]]]:
    out: Dict[str, List[Tuple[Date, float]]] = {}
    for identifier, profile in result.profiles.items():
        for record in profile.records:
            if record.pool == pool and record.hashrate_history:
                out[identifier] = sorted(record.hashrate_history)
    return out


def _activity_bounds(series: Sequence[Tuple[Date, float]],
                     threshold: float) -> Optional[Tuple[Date, Date, float]]:
    """(first active day, last active day, mean active rate)."""
    active = [(d, r) for d, r in series if r > threshold]
    if not active:
        return None
    mean_rate = sum(r for _, r in active) / len(active)
    return active[0][0], active[-1][0], mean_rate


def detect_rotations(result: MeasurementResult, pool: str,
                     max_gap_days: int = 45,
                     min_rate_similarity: float = 0.2,
                     min_rate_hs: float = 1000.0) -> List[RotationCandidate]:
    """Find hand-over pairs among wallets with history at ``pool``.

    A pair qualifies when wallet A's activity *ends* within
    ``max_gap_days`` of wallet B's activity *starting*, both at rates
    above ``min_rate_hs`` and within a similarity band — the signature
    of one botnet re-pointing its login.
    """
    series = _series_by_wallet(result, pool)
    bounds = {}
    for wallet, history in series.items():
        info = _activity_bounds(history, threshold=min_rate_hs)
        if info is not None:
            bounds[wallet] = info
    candidates: List[RotationCandidate] = []
    for from_wallet, (f_start, f_end, f_rate) in bounds.items():
        for to_wallet, (t_start, t_end, t_rate) in bounds.items():
            if from_wallet == to_wallet:
                continue
            gap = (t_start - f_end).days
            if not 0 <= gap <= max_gap_days:
                continue
            if t_end <= f_end:
                continue  # successor must outlive the predecessor
            similarity = min(f_rate, t_rate) / max(f_rate, t_rate)
            if similarity < min_rate_similarity:
                continue
            candidates.append(RotationCandidate(
                pool=pool,
                from_wallet=from_wallet,
                to_wallet=to_wallet,
                handover_date=t_start,
                from_rate=f_rate,
                to_rate=t_rate,
                rate_similarity=similarity,
            ))
    candidates.sort(key=lambda c: (c.handover_date, c.from_wallet))
    return candidates


def score_against_campaigns(candidates: Sequence[RotationCandidate],
                            result: MeasurementResult) -> Dict[str, int]:
    """How many suggested links fall inside vs across known campaigns.

    Inside-campaign hits corroborate the aggregation; cross-campaign
    hits are either new intelligence or false positives for review.
    """
    owner: Dict[str, int] = {}
    for campaign in result.campaigns:
        for identifier in campaign.identifiers:
            owner[identifier] = campaign.campaign_id
    inside = across = unknown = 0
    for candidate in candidates:
        a = owner.get(candidate.from_wallet)
        b = owner.get(candidate.to_wallet)
        if a is None or b is None:
            unknown += 1
        elif a == b:
            inside += 1
        else:
            across += 1
    return {"inside_campaign": inside, "across_campaigns": across,
            "unknown": unknown}
