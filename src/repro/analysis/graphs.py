"""Campaign-graph exports (the Fig. 6 visualisations).

The paper renders each case-study campaign as a typed graph: wallets in
blue, miner samples in light green, contacted domains in gray, malware
hosts in pink, ancillaries in red/orange.  This module rebuilds that
graph for any recovered campaign and serialises it to Graphviz DOT (and
to a plain edge list), with the paper's colour scheme as defaults.
"""

from typing import Dict, List, Tuple

import networkx as nx

from repro.core.aggregation import Campaign

#: node type -> fill colour, matching the Fig. 6 legend.
NODE_COLORS: Dict[str, str] = {
    "wallet": "#4a90d9",       # blue
    "miner": "#a8d08d",        # light green
    "ancillary": "#e06666",    # red
    "domain": "#999999",       # gray
    "host": "#e8a2c8",         # pink
    "proxy": "#e8a2c8",
    "operation": "#f6b26b",    # orange
}


__all__ = [
    "campaign_graph",
    "structure_metrics",
    "to_dot",
    "to_edge_list",
]


def campaign_graph(campaign: Campaign) -> nx.Graph:
    """Typed graph of one campaign (samples, wallets, infrastructure)."""
    graph = nx.Graph()
    # campaign.identifiers already excludes white-listed donation
    # wallets; records may still mention them, so filter here too.
    campaign_ids = set(campaign.identifiers)
    for record in campaign.records:
        kind = "miner" if record.is_miner else "ancillary"
        sample_node = f"s:{record.sha256[:10]}"
        graph.add_node(sample_node, node_type=kind)
        for identifier in record.identifiers:
            if identifier not in campaign_ids:
                continue
            wallet_node = f"w:{identifier[:10]}"
            graph.add_node(wallet_node, node_type="wallet")
            graph.add_edge(sample_node, wallet_node,
                           feature="same_identifier")
        for parent in record.parents:
            parent_node = f"s:{parent[:10]}"
            if parent_node in graph:
                graph.add_edge(sample_node, parent_node,
                               feature="ancestor")
        for alias in record.cname_aliases:
            alias_node = f"d:{alias}"
            graph.add_node(alias_node, node_type="domain")
            graph.add_edge(sample_node, alias_node, feature="cname")
    for ip in campaign.hosting_ips:
        host_node = f"h:{ip}"
        graph.add_node(host_node, node_type="host")
        for record in campaign.records:
            if any(ip in url for url in record.itw_urls):
                graph.add_edge(f"s:{record.sha256[:10]}", host_node,
                               feature="hosting")
    for proxy in campaign.proxies:
        proxy_node = f"p:{proxy}"
        graph.add_node(proxy_node, node_type="proxy")
        for record in campaign.records:
            if record.dst_ip == proxy:
                graph.add_edge(f"s:{record.sha256[:10]}", proxy_node,
                               feature="proxy")
    for operation in campaign.operations:
        graph.add_node(f"o:{operation}", node_type="operation")
    return graph


def to_dot(graph: nx.Graph, title: str = "campaign") -> str:
    """Serialise to Graphviz DOT with the Fig. 6 colour scheme."""
    lines = [f'graph "{title}" {{',
             "  overlap=false;",
             "  node [style=filled, fontsize=9];"]
    for node, attrs in graph.nodes(data=True):
        color = NODE_COLORS.get(attrs.get("node_type", ""), "#ffffff")
        lines.append(f'  "{node}" [fillcolor="{color}"];')
    for a, b, attrs in graph.edges(data=True):
        label = attrs.get("feature", "")
        lines.append(f'  "{a}" -- "{b}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def to_edge_list(graph: nx.Graph) -> List[Tuple[str, str, str]]:
    """(node_a, node_b, feature) triples, sorted for stable output."""
    return sorted(
        (a, b, attrs.get("feature", ""))
        for a, b, attrs in graph.edges(data=True)
    )


def structure_metrics(graph: nx.Graph) -> Dict[str, float]:
    """Shape metrics for comparing recovered structure to Fig. 6."""
    by_type: Dict[str, int] = {}
    for _, attrs in graph.nodes(data=True):
        node_type = attrs.get("node_type", "?")
        by_type[node_type] = by_type.get(node_type, 0) + 1
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "components": nx.number_connected_components(graph)
        if graph.number_of_nodes() else 0,
        **{f"n_{k}": v for k, v in sorted(by_type.items())},
    }
