"""Opaque-pool revenue gap (the minergate blind spot, §IV-C).

The paper finds 4,980 e-mail identifiers mining at minergate but cannot
measure their earnings: the pool publishes no per-wallet statistics.
That makes every headline figure an under-approximation.  This module
bounds the gap: assuming opaque-pool miners resemble the measured
population (same per-identifier earning distribution), estimate how
much XMR is invisible and how the headline fraction would move.

This is explicitly an *extrapolation* — the reproduction labels it as
such, as the paper does for its own under-approximation caveats.
"""

from dataclasses import dataclass
from typing import List

from repro.core.pipeline import MeasurementResult
from repro.wallets.detect import IdentifierKind, classify_identifier


@dataclass(frozen=True)
class OpacityGap:
    """Estimated revenue hidden behind opaque pools."""

    measured_identifiers: int
    measured_xmr: float
    opaque_identifiers: int
    median_xmr_per_identifier: float
    mean_xmr_per_identifier: float
    estimated_hidden_xmr_median: float   # conservative bound
    estimated_hidden_xmr_mean: float     # skew-sensitive bound

    @property
    def undercount_fraction_median(self) -> float:
        total = self.measured_xmr + self.estimated_hidden_xmr_median
        return self.estimated_hidden_xmr_median / total if total else 0.0


def opaque_identifiers(result: MeasurementResult) -> List[str]:
    """Identifiers observed mining only at opaque/unknown pools.

    E-mails on minergate are the bulk; any identifier with no
    transparent-pool profile counts.
    """
    out = []
    for record in result.miner_records():
        for identifier in record.identifiers:
            if identifier in result.profiles:
                continue
            kind = classify_identifier(identifier).kind
            if kind in (IdentifierKind.EMAIL, IdentifierKind.USERNAME,
                        IdentifierKind.WALLET):
                out.append(identifier)
    return sorted(set(out))


def estimate_opacity_gap(result: MeasurementResult) -> OpacityGap:
    """Bound the hidden revenue behind opaque pools."""
    earnings = sorted(p.total_paid for p in result.profiles.values()
                      if p.total_paid > 0)
    measured_xmr = sum(earnings)
    hidden_ids = opaque_identifiers(result)
    if earnings:
        median = earnings[len(earnings) // 2]
        mean = measured_xmr / len(earnings)
    else:
        median = mean = 0.0
    return OpacityGap(
        measured_identifiers=len(earnings),
        measured_xmr=measured_xmr,
        opaque_identifiers=len(hidden_ids),
        median_xmr_per_identifier=median,
        mean_xmr_per_identifier=mean,
        estimated_hidden_xmr_median=median * len(hidden_ids),
        estimated_hidden_xmr_mean=mean * len(hidden_ids),
    )
