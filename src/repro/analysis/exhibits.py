"""Table and figure generators (the paper's evaluation exhibits)."""

import datetime
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlparse

from repro.chain.emission import MONERO_EMISSION
from repro.common.simtime import POW_FORK_DATES, Date
from repro.core.aggregation import Campaign
from repro.core.pipeline import MeasurementResult, iter_result_records
from repro.corpus.distributions import BAND_LABELS, band_of
from repro.forums.corpus import ForumCorpus
from repro.forums.trends import coin_thread_shares
from repro.wallets.detect import IdentifierKind, classify_identifier


__all__ = [
    "cdf_quantile",
    "fig1_forum_trends",
    "fig4_cdf",
    "fig5_pools_per_campaign",
    "fig6_campaign_structure",
    "fig7_payment_timeline",
    "fork_dieoff",
    "headline_monero_fraction",
    "monthly_payment_series",
    "multi_pool_share",
    "stock_tool_campaign_share",
    "table10_packers",
    "table11_infrastructure",
    "table12_related_work",
    "table14_top_wallets",
    "table15_email_pools",
    "table3_dataset",
    "table4_currencies",
    "table5_pre2014_reuse",
    "table6_hosting_domains",
    "table7_pool_popularity",
    "table8_top_campaigns",
    "table9_stock_tools",
]


# ---------------------------------------------------------------------------
# Fig 1 — forum thread trends
# ---------------------------------------------------------------------------

def fig1_forum_trends(corpus: ForumCorpus) -> Dict[int, Dict[str, float]]:
    """Per-year per-coin share of mining threads (the Fig. 1 series)."""
    return coin_thread_shares(corpus)


# ---------------------------------------------------------------------------
# Table III — dataset summary
# ---------------------------------------------------------------------------

def table3_dataset(result: MeasurementResult) -> Dict[str, int]:
    """Table III: dataset summary (miners, ancillaries, sources, resources)."""
    stats = result.stats
    rows = {
        "ALL EXECUTABLES": stats.miners + stats.ancillaries,
        "Miner Binaries": stats.miners,
        "Ancillary Binaries": stats.ancillaries,
    }
    for source, count in sorted(stats.by_source.items(),
                                key=lambda kv: -kv[1]):
        rows[source] = count
    rows["Sandbox Analysis"] = stats.sandbox_analyses
    rows["Network Analysis"] = stats.network_analyses
    rows["Binary Analysis"] = stats.binary_analyses
    return rows


# ---------------------------------------------------------------------------
# Table IV — campaigns per currency / samples per year
# ---------------------------------------------------------------------------

def table4_currencies(result: MeasurementResult) -> Dict[str, object]:
    """Left: campaigns per identifier type; right: samples/year for
    BTC and XMR (miner records with embedded wallets)."""
    per_currency: Counter = Counter()
    emails = 0
    unknown = 0
    mixed = 0
    for campaign in result.campaigns:
        coins = campaign.coins
        if len(coins) >= 2:
            mixed += 1
        for coin in coins:
            per_currency[coin] += 1
        kinds = {classify_identifier(i).kind for i in campaign.identifiers}
        if not coins:
            if IdentifierKind.EMAIL in kinds:
                emails += 1
            else:
                unknown += 1
    samples_per_year: Dict[str, Counter] = {"BTC": Counter(),
                                            "XMR": Counter()}
    for record in iter_result_records(result):
        if not record.is_miner:
            continue
        tickers = {t for t in record.identifier_coins if t}
        for ticker in tickers & {"BTC", "XMR"}:
            if record.first_seen is None:
                samples_per_year[ticker]["~19?"] += 1
            else:
                samples_per_year[ticker][str(record.first_seen.year)] += 1
    return {
        "campaigns_per_currency": dict(per_currency.most_common()),
        "email_campaigns": emails,
        "unknown_campaigns": unknown,
        "multi_currency_campaigns": mixed,
        "samples_per_year": {k: dict(sorted(v.items()))
                             for k, v in samples_per_year.items()},
    }


# ---------------------------------------------------------------------------
# Fig 4 — CDFs of samples / wallets / earnings per campaign
# ---------------------------------------------------------------------------

def fig4_cdf(result: MeasurementResult) -> Dict[str, List[float]]:
    """Sorted per-campaign values; plot index/n vs value for the CDF."""
    campaigns = result.campaigns
    return {
        "samples": sorted(float(c.num_samples) for c in campaigns),
        "wallets": sorted(float(c.num_wallets) for c in campaigns),
        "earnings_xmr": sorted(c.total_xmr for c in campaigns
                               if c.total_xmr > 0),
    }


def cdf_quantile(values: List[float], threshold: float) -> float:
    """Fraction of values <= threshold (to check e.g. '99% earn <100')."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


# ---------------------------------------------------------------------------
# Table V — pre-2014 droppers that later mined Monero
# ---------------------------------------------------------------------------

def table5_pre2014_reuse(result: MeasurementResult) -> List[Dict[str, str]]:
    """Table V: pre-2014 samples inside campaigns that mine Monero."""
    cutoff = datetime.date(2014, 1, 1)
    rows = []
    for campaign in result.campaigns:
        xmr_wallets = [i for i, c in campaign.identifier_coins.items()
                       if c == "XMR"]
        if not xmr_wallets:
            continue
        for record in campaign.records:
            if record.first_seen and record.first_seen < cutoff:
                rows.append({
                    "sha256": record.sha256,
                    "year": str(record.first_seen.year),
                    "xmr_wallet": xmr_wallets[0][:10] + "...",
                    "campaign": str(campaign.campaign_id),
                })
    rows.sort(key=lambda r: (r["year"], r["sha256"]))
    return rows


# ---------------------------------------------------------------------------
# Table VI / XIII — hosting domains
# ---------------------------------------------------------------------------

def table6_hosting_domains(result: MeasurementResult,
                           top: int = 25) -> List[Tuple[str, int, int]]:
    """(domain, #samples hosted, #distinct URLs), by sample count."""
    samples_per_domain: Dict[str, set] = defaultdict(set)
    urls_per_domain: Dict[str, set] = defaultdict(set)
    for record in iter_result_records(result):
        for url in record.itw_urls:
            host = urlparse(url).hostname or ""
            if not host:
                continue
            samples_per_domain[host].add(record.sha256)
            urls_per_domain[host].add(url)
    rows = [
        (domain, len(samples), len(urls_per_domain[domain]))
        for domain, samples in samples_per_domain.items()
    ]
    rows.sort(key=lambda r: (-r[1], r[0]))
    return rows[:top]


# ---------------------------------------------------------------------------
# Fig 5 — pools per campaign, grouped by earnings
# ---------------------------------------------------------------------------

def fig5_pools_per_campaign(result: MeasurementResult) -> Dict[str, Counter]:
    """band label -> histogram {num_pools: num_campaigns} (XMR only)."""
    histograms: Dict[str, Counter] = {label: Counter()
                                      for label in ["<1"] + BAND_LABELS[1:]}
    # The figure's bands are <1, [1-100), [100-1000), [1000-10000), >=10000
    figure_bands = [(0, 1.0, "<1"), (1.0, 100.0, "[1-100)"),
                    (100.0, 1000.0, "[100-1000)"),
                    (1000.0, 10000.0, "[1000-10000)"),
                    (10000.0, float("inf"), ">=10000")]
    histograms = {label: Counter() for _, _, label in figure_bands}
    for campaign in result.campaigns:
        if "XMR" not in campaign.coins or campaign.total_xmr <= 0:
            continue
        n_pools = max(1, len(campaign.pools_used))
        for low, high, label in figure_bands:
            if low <= campaign.total_xmr < high:
                histograms[label][n_pools] += 1
                break
    return histograms


def multi_pool_share(result: MeasurementResult,
                     min_xmr: float = 1000.0) -> float:
    """Fraction of campaigns above ``min_xmr`` using more than one pool
    (the paper: 97% for >=1K XMR)."""
    eligible = [c for c in result.campaigns
                if "XMR" in c.coins and c.total_xmr >= min_xmr]
    if not eligible:
        return 0.0
    multi = sum(1 for c in eligible if len(c.pools_used) > 1)
    return multi / len(eligible)


# ---------------------------------------------------------------------------
# Table VII — pool popularity
# ---------------------------------------------------------------------------

def table7_pool_popularity(result: MeasurementResult) -> List[Dict[str, object]]:
    """Table VII: per-pool XMR mined, wallet counts and USD value."""
    per_pool: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"xmr": 0.0, "wallets": 0, "usd": 0.0})
    for profile in result.profiles.values():
        for record in profile.records:
            if record.coin != "XMR":
                continue
            entry = per_pool[record.pool]
            entry["xmr"] += record.total_paid
            entry["wallets"] += 1
            entry["usd"] += record.usd
    rows = [
        {"pool": pool, "xmr_mined": stats["xmr"],
         "wallets": int(stats["wallets"]), "usd": stats["usd"]}
        for pool, stats in per_pool.items()
    ]
    rows.sort(key=lambda r: -r["xmr_mined"])
    return rows


# ---------------------------------------------------------------------------
# Table VIII — top campaigns
# ---------------------------------------------------------------------------

def table8_top_campaigns(result: MeasurementResult,
                         top: int = 10) -> Dict[str, object]:
    """Table VIII: top campaigns by XMR plus ecosystem totals and skew."""
    xmr_campaigns = [c for c in result.campaigns
                     if "XMR" in c.coins and c.total_xmr > 0]
    xmr_campaigns.sort(key=lambda c: -c.total_xmr)
    rows = []
    for campaign in xmr_campaigns[:top]:
        rows.append({
            "campaign": f"C#{campaign.campaign_id}",
            "samples": campaign.num_samples,
            "wallets": campaign.num_wallets,
            "start": campaign.first_seen.isoformat()
            if campaign.first_seen else "?",
            "end": "active*" if campaign.active else (
                campaign.last_share.isoformat()
                if campaign.last_share else "?"),
            "xmr": campaign.total_xmr,
            "usd": campaign.total_usd,
        })
    total_xmr = sum(c.total_xmr for c in xmr_campaigns)
    total_usd = sum(c.total_usd for c in xmr_campaigns)
    top_xmr = sum(c.total_xmr for c in xmr_campaigns[:top])
    return {
        "rows": rows,
        "campaigns_with_payments": len(xmr_campaigns),
        "total_xmr": total_xmr,
        "total_usd": total_usd,
        "top_share": top_xmr / total_xmr if total_xmr else 0.0,
        "top1_share": (xmr_campaigns[0].total_xmr / total_xmr
                       if xmr_campaigns and total_xmr else 0.0),
    }


# ---------------------------------------------------------------------------
# Table IX — stock mining tools
# ---------------------------------------------------------------------------

def table9_stock_tools(result: MeasurementResult) -> List[Dict[str, object]]:
    """Table IX: stock-tool attribution counts per framework."""
    per_framework: Dict[str, Dict[str, set]] = defaultdict(
        lambda: {"instances": set(), "versions": set(), "campaigns": set()})
    for campaign in result.campaigns:
        for framework, version, sha in campaign.stock_tool_matches:
            entry = per_framework[framework]
            entry["instances"].add(sha)
            entry["versions"].add(version)
            entry["campaigns"].add(campaign.campaign_id)
    rows = [
        {"tool": framework,
         "instances": len(stats["instances"]),
         "versions": len(stats["versions"]),
         "campaigns": len(stats["campaigns"])}
        for framework, stats in per_framework.items()
    ]
    rows.sort(key=lambda r: -r["instances"])
    return rows


def stock_tool_campaign_share(result: MeasurementResult) -> float:
    """Fraction of XMR campaigns using stock tools (~18% in the paper)."""
    xmr = [c for c in result.campaigns if "XMR" in c.coins]
    if not xmr:
        return 0.0
    return sum(1 for c in xmr if c.stock_tools) / len(xmr)


# ---------------------------------------------------------------------------
# Table X — packers
# ---------------------------------------------------------------------------

def table10_packers(result: MeasurementResult) -> Dict[str, int]:
    """Table X: packer family -> sample count, plus the unpacked rest."""
    counts: Counter = Counter()
    not_packed = 0
    for record in iter_result_records(result):
        if record.packer:
            counts[record.packer] += 1
        elif record.obfuscated:
            counts["unknown-crypter"] += 1
        else:
            not_packed += 1
    rows = dict(counts.most_common())
    rows["Not packed"] = not_packed
    return rows


# ---------------------------------------------------------------------------
# Table XI — infrastructure / stealth / activity by profit band
# ---------------------------------------------------------------------------

def table11_infrastructure(result: MeasurementResult) -> Dict[str, Dict[str, float]]:
    """Rows of Table XI: per band (and ALL), share of campaigns with
    each feature, plus activity-period breakdowns."""
    bands: Dict[str, List[Campaign]] = {label: [] for label in BAND_LABELS}
    eligible = [c for c in result.campaigns
                if "XMR" in c.coins and c.total_xmr > 0]
    for campaign in eligible:
        bands[BAND_LABELS[band_of(campaign.total_xmr)]].append(campaign)
    bands["ALL"] = eligible

    def share(group: List[Campaign], predicate) -> float:
        if not group:
            return 0.0
        return sum(1 for c in group if predicate(c)) / len(group)

    out: Dict[str, Dict[str, float]] = {}
    for label, group in bands.items():
        column = {
            "#campaigns": float(len(group)),
            "ppi": share(group, lambda c: c.uses_ppi),
            "stock_tool": share(group, lambda c: bool(c.stock_tools)),
            "both": share(group, lambda c: c.uses_ppi and c.stock_tools),
            "obfuscation": share(group, lambda c: c.obfuscated),
            "cnames": share(group, lambda c: bool(c.cname_aliases)),
            "proxies": share(group, lambda c: bool(c.proxies)),
        }
        # "+ Apr-18" rows: survival across each PoW fork, measured over
        # the campaigns that had started before that fork (the paper's
        # 27.6% complements the 72.4% April die-off).
        for fork, key in zip(POW_FORK_DATES,
                             ["active_after_apr18", "active_after_oct18",
                              "active_after_mar19"]):
            started_before = [c for c in group
                              if c.first_seen is not None
                              and c.first_seen < fork]
            column[key] = share(
                started_before,
                lambda c, f=fork: (c.last_share is not None
                                   and c.last_share >= f))
        for year in range(2014, 2020):
            column[f"start_{year}"] = share(
                group, lambda c, y=year: (c.first_seen is not None
                                          and c.first_seen.year == y))
        # "Years:" rows — whole years of observed activity.  Rich
        # campaigns run for multiple years (53.3% of the >=10K band ran
        # four years in the paper); the bottom band mostly dies young.
        for years in range(5):
            column[f"years_{years}"] = share(
                group, lambda c, y=years: _activity_years(c) == y)
        out[label] = column
    return out


def _activity_years(campaign: Campaign) -> int:
    """Whole years between first sample and last pool share (capped)."""
    if campaign.first_seen is None or campaign.last_share is None:
        return 0
    days = max(0, (campaign.last_share - campaign.first_seen).days)
    return min(4, days // 365)


def fork_dieoff(result: MeasurementResult) -> List[float]:
    """Share of campaigns that stopped by each PoW fork (72/89/96%)."""
    eligible = [c for c in result.campaigns
                if "XMR" in c.coins and c.total_xmr > 0]
    out = []
    for fork in POW_FORK_DATES:
        if not eligible:
            out.append(0.0)
            continue
        # only campaigns that had started before the fork can die at it
        started = [c for c in eligible
                   if c.first_seen is not None and c.first_seen < fork]
        if not started:
            out.append(0.0)
            continue
        stopped = sum(1 for c in started
                      if c.last_share is None or c.last_share < fork)
        out.append(stopped / len(started))
    return out


# ---------------------------------------------------------------------------
# Table XII — related work (static comparison table)
# ---------------------------------------------------------------------------

def table12_related_work(result: Optional[MeasurementResult] = None) -> List[Dict[str, str]]:
    """Table XII: the related-work comparison, ours appended when given."""
    rows = [
        {"work": "Huang et al. (2014)", "focus": "Binary-based mining (BTC)",
         "analyzed": "Unknown", "detected": "2K crypto-mining malware",
         "profits": "14,979 BTC"},
        {"work": "Ruth et al. (2018)", "focus": "Web-based mining (XMR)",
         "analyzed": "10M websites", "detected": "2,287 websites",
         "profits": "1,271 XMR/month"},
        {"work": "Hong et al. (2018)", "focus": "Web cryptojacking (XMR)",
         "analyzed": "548,624 websites", "detected": "2,270 websites",
         "profits": "7,692.30 XMR"},
        {"work": "Konoth et al. (2018)", "focus": "Web cryptojacking (XMR)",
         "analyzed": "991,513 websites", "detected": "1,735 websites",
         "profits": "746.55 XMR/month"},
        {"work": "Papadopoulos et al. (2018)", "focus": "Web mining (XMR)",
         "analyzed": "3M websites", "detected": "107.5K websites",
         "profits": "N/A"},
        {"work": "Musch et al. (2018)", "focus": "Web cryptojacking (XMR)",
         "analyzed": "1M websites", "detected": "2.5k websites",
         "profits": "N/A"},
    ]
    if result is not None:
        summary = table8_top_campaigns(result)
        rows.append({
            "work": "This reproduction",
            "focus": "Binary-based mining (various)",
            "analyzed": f"{result.stats.collected} samples",
            "detected": f"{result.stats.miners + result.stats.ancillaries}"
                        " crypto-mining samples",
            "profits": f"{summary['total_xmr']:.0f} XMR",
        })
    return rows


# ---------------------------------------------------------------------------
# Fig 6 — case-study campaign structure
# ---------------------------------------------------------------------------

def fig6_campaign_structure(result: MeasurementResult,
                            campaign: Campaign) -> Dict[str, object]:
    """Node/edge census of one campaign's grouping graph (Fig. 6a/6b)."""
    return {
        "campaign": f"C#{campaign.campaign_id}",
        "samples": campaign.num_samples,
        "wallets": campaign.num_wallets,
        "cname_aliases": sorted(campaign.cname_aliases),
        "proxies": sorted(campaign.proxies),
        "hosting_ips": sorted(campaign.hosting_ips),
        "hosting_urls": sorted(campaign.hosting_urls)[:10],
        "operations": sorted(campaign.operations),
        "coins": sorted(campaign.coins),
        "pools_used": list(campaign.pools_used),
    }


# ---------------------------------------------------------------------------
# Fig 6c / 7 / 8 — payment timelines
# ---------------------------------------------------------------------------

def fig7_payment_timeline(result: MeasurementResult,
                          campaign: Campaign) -> Dict[str, List[Tuple[Date, float, str]]]:
    """wallet -> [(date, amount, pool)] for every dated payment."""
    timeline: Dict[str, List[Tuple[Date, float, str]]] = {}
    for identifier in campaign.identifiers:
        profile = result.profiles.get(identifier)
        if profile is None:
            continue
        payments = profile.payments()
        if payments:
            timeline[identifier] = payments
    return timeline


def monthly_payment_series(timeline: Dict[str, List[Tuple[Date, float, str]]]) -> Dict[str, Dict[str, float]]:
    """wallet -> {YYYY-MM: XMR} (the Fig. 7/8 monthly aggregation)."""
    out: Dict[str, Dict[str, float]] = {}
    for wallet, payments in timeline.items():
        months: Dict[str, float] = defaultdict(float)
        for when, amount, _pool in payments:
            months[when.strftime("%Y-%m")] += amount
        out[wallet] = dict(sorted(months.items()))
    return out


# ---------------------------------------------------------------------------
# Table XIV — top wallets
# ---------------------------------------------------------------------------

def table14_top_wallets(result: MeasurementResult,
                        top: int = 10) -> List[Dict[str, object]]:
    """Table XIV: top wallets by XMR mined across all pools."""
    rows = [
        {"wallet": identifier[:10] + "...",
         "xmr": profile.total_paid,
         "usd": profile.total_usd}
        for identifier, profile in result.profiles.items()
        if profile.total_paid > 0
    ]
    rows.sort(key=lambda r: -r["xmr"])
    return rows[:top]


# ---------------------------------------------------------------------------
# Table XV — e-mails per pool
# ---------------------------------------------------------------------------

def table15_email_pools(result: MeasurementResult) -> Dict[str, int]:
    """pool -> #distinct e-mail identifiers mining there.

    E-mails mostly mine at minergate, which is opaque: the pool name is
    recovered from the sample's own records, not from payment data.
    """
    pool_emails: Dict[str, set] = defaultdict(set)
    for record in iter_result_records(result):
        if not record.is_miner:
            continue
        emails = [i for i in record.identifiers
                  if classify_identifier(i).kind is IdentifierKind.EMAIL]
        if not emails:
            continue
        pool = record.pool or "unknown"
        for email in emails:
            pool_emails[pool].add(email)
    return {pool: len(emails)
            for pool, emails in sorted(pool_emails.items(),
                                       key=lambda kv: -len(kv[1]))}


# ---------------------------------------------------------------------------
# §IV-D headline — share of circulating Monero
# ---------------------------------------------------------------------------

def headline_monero_fraction(result: MeasurementResult,
                             as_of: Date = datetime.date(2019, 4, 30)) -> Dict[str, float]:
    """Headline figure: illicit XMR as a share of circulating supply."""
    total_xmr = sum(p.total_paid for p in result.profiles.values())
    supply = MONERO_EMISSION.circulating_supply(as_of)
    usd = sum(p.total_usd for p in result.profiles.values())
    return {
        "total_xmr": total_xmr,
        "circulating_supply": supply,
        "fraction": total_xmr / supply if supply else 0.0,
        "total_usd": usd,
    }
