"""Ground-truth evaluation of the sanity funnel (§VI, quantified).

The paper discusses its false-positive / false-negative trade-off at
length — the 10-AV threshold minimises FPs at the cost of FNs, and the
authors propose exploring 5 AVs as future work.  With corpus ground
truth the trade-off is measurable: classification metrics for the
keep/drop decision, and a sweep of the threshold producing the
precision/recall curve the authors could not compute.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.pipeline import MeasurementPipeline, MeasurementResult
from repro.corpus.model import SyntheticWorld

#: ground-truth kinds that SHOULD be kept by the funnel.
_MINING_KINDS = frozenset({"miner", "ancillary"})


@dataclass(frozen=True)
class FunnelQuality:
    """Keep/drop classification quality of the sanity checks."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        kept = self.true_positives + self.false_positives
        return self.true_positives / kept if kept else 1.0

    @property
    def recall(self) -> float:
        relevant = self.true_positives + self.false_negatives
        return self.true_positives / relevant if relevant else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0


def funnel_quality(world: SyntheticWorld,
                   result: MeasurementResult) -> FunnelQuality:
    """Score the keep/drop decision against ground-truth sample kinds.

    Stock-tool binaries are excluded from the relevant set: the paper
    *deliberately* white-lists them out of the malware dataset, so
    dropping them is correct behaviour, and keeping one (as campaign
    evidence) is not a false positive either.
    """
    kept = {record.sha256 for record in result.records}
    tp = fp = fn = tn = 0
    for sample in world.samples:
        if sample.kind == "tool":
            continue
        relevant = sample.kind in _MINING_KINDS
        if sample.sha256 in kept:
            if relevant:
                tp += 1
            else:
                fp += 1
        else:
            if relevant:
                fn += 1
            else:
                tn += 1
    return FunnelQuality(true_positives=tp, false_positives=fp,
                         false_negatives=fn, true_negatives=tn)


def av_threshold_sweep(world: SyntheticWorld,
                       thresholds: Sequence[int] = (3, 5, 10, 15)
                       ) -> List[Dict[str, float]]:
    """Re-run the pipeline at several AV thresholds (§VI future work).

    Returns one row per threshold with funnel precision/recall and the
    kept-miner count.  Lower thresholds keep more true miners (recall
    up) at some precision cost — quantifying the paper's conjecture
    that 5 AVs "should not incur many FPs" given the tool whitelist.
    """
    rows: List[Dict[str, float]] = []
    for threshold in thresholds:
        result = MeasurementPipeline(
            world, positives_threshold=threshold).run()
        quality = funnel_quality(world, result)
        rows.append({
            "threshold": float(threshold),
            "kept_miners": float(result.stats.miners),
            "precision": quality.precision,
            "recall": quality.recall,
            "f1": quality.f1,
        })
    return rows
