"""In-memory duplex byte channels.

The simulation runs thousands of miner/pool conversations per benchmark,
so transport is an in-memory pair of FIFO byte queues with the same
read/write surface a socket would give the protocol layer.  Determinism
and speed are the point; the framing layer on top is byte-exact Stratum.
"""

from collections import deque
from typing import Callable, Deque, Optional, Tuple


class Channel:
    """One endpoint of a duplex connection.

    An endpoint may register a *receive callback* (servers do): when the
    peer writes, the callback runs synchronously, which gives the
    request/response behaviour of a blocking socket without threads.
    """

    def __init__(self) -> None:
        self._incoming: Deque[bytes] = deque()
        self._peer: Optional["Channel"] = None
        self._closed = False
        self._callback: Optional[Callable[[], None]] = None
        self._in_callback = False
        self.bytes_sent = 0
        self.bytes_received = 0

    def _attach(self, peer: "Channel") -> None:
        self._peer = peer

    def set_receive_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` whenever the peer delivers bytes here."""
        self._callback = callback

    def send(self, data: bytes) -> None:
        """Write bytes to the peer; raises after close."""
        if self._closed:
            raise ConnectionError("channel is closed")
        if self._peer is None:
            raise ConnectionError("channel is not connected")
        if self._peer._closed:
            raise ConnectionResetError("peer closed the connection")
        self.bytes_sent += len(data)
        self._peer._incoming.append(data)
        peer = self._peer
        if peer._callback is not None and not peer._in_callback:
            peer._in_callback = True
            try:
                while peer._incoming:
                    peer._callback()
            finally:
                peer._in_callback = False

    def receive(self) -> Optional[bytes]:
        """Pop the next chunk, or None when nothing is pending."""
        if not self._incoming:
            return None
        chunk = self._incoming.popleft()
        self.bytes_received += len(chunk)
        return chunk

    def receive_all(self) -> bytes:
        """Drain everything currently pending."""
        chunks = []
        while self._incoming:
            chunks.append(self.receive())
        return b"".join(c for c in chunks if c)

    def close(self) -> None:
        """Close this endpoint; subsequent sends raise."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def peer_closed(self) -> bool:
        return self._peer is not None and self._peer._closed

    def has_pending(self) -> bool:
        """Whether bytes are queued for receive()."""
        return bool(self._incoming)


def make_channel_pair() -> Tuple[Channel, Channel]:
    """Create a connected (client, server) channel pair."""
    a, b = Channel(), Channel()
    a._attach(b)
    b._attach(a)
    return a, b
