"""Stratum mining protocol substrate (§II, §III-C).

Stratum is the de-facto TCP protocol between miners and pools: newline-
delimited JSON-RPC with ``login`` / ``job`` / ``submit`` / ``keepalived``
methods.  This package implements the wire format, a miner-side client, a
pool-side server session, and a mining *proxy* — the share-aggregation
relay criminals use so that a pool sees a single IP instead of a botnet
(§III-E "Mining proxies").
"""

from repro.stratum.framing import LineFramer, encode_frame
from repro.stratum.messages import (
    JobNotification,
    LoginRequest,
    LoginResult,
    StratumError,
    SubmitRequest,
    SubmitResult,
    parse_message,
)
from repro.stratum.channel import Channel, make_channel_pair
from repro.stratum.client import StratumClient
from repro.stratum.server import StratumServerSession, ShareSink
from repro.stratum.proxy import MiningProxy

__all__ = [
    "LineFramer",
    "encode_frame",
    "JobNotification",
    "LoginRequest",
    "LoginResult",
    "StratumError",
    "SubmitRequest",
    "SubmitResult",
    "parse_message",
    "Channel",
    "make_channel_pair",
    "StratumClient",
    "StratumServerSession",
    "ShareSink",
    "MiningProxy",
]
