"""Typed Stratum messages (CryptoNote pool dialect).

The dialect follows what xmrig speaks to Monero pools::

    -> {"id":1,"jsonrpc":"2.0","method":"login",
        "params":{"login":"<wallet>","pass":"x","agent":"xmrig/2.8.1"}}
    <- {"id":1,"jsonrpc":"2.0","result":{"id":"<session>","job":{...},
        "status":"OK"},"error":null}
    <- {"jsonrpc":"2.0","method":"job","params":{...}}
    -> {"id":2,"jsonrpc":"2.0","method":"submit",
        "params":{"id":"<session>","job_id":"...","nonce":"...",
                  "result":"..."}}
    <- {"id":2,"jsonrpc":"2.0","result":{"status":"OK"},"error":null}
"""

from dataclasses import dataclass
from typing import Optional, Union

from repro.common.errors import ProtocolError


@dataclass(frozen=True)
class LoginRequest:
    """Miner -> pool authentication; ``login`` carries the wallet/e-mail."""

    msg_id: int
    login: str
    password: str = "x"
    agent: str = "xmrig/2.8.1"

    def to_wire(self) -> dict:
        """Wire frame for the login request."""
        return {
            "id": self.msg_id,
            "jsonrpc": "2.0",
            "method": "login",
            "params": {
                "login": self.login,
                "pass": self.password,
                "agent": self.agent,
            },
        }


@dataclass(frozen=True)
class JobNotification:
    """Pool -> miner work assignment.

    ``target`` encodes the share difficulty the CryptoNote way: an
    8-hex-digit compact target where difficulty = 0xffffffff / target.
    """

    job_id: str
    blob: str
    target: str
    algo: str
    height: int = 0

    @property
    def difficulty(self) -> int:
        """Share difficulty encoded by the compact target."""
        try:
            value = int(self.target, 16)
        except ValueError:
            return 1
        if value <= 0:
            return 1
        return max(1, 0xFFFFFFFF // value)

    @staticmethod
    def target_for_difficulty(difficulty: int) -> str:
        """Compact hex target for a difficulty (inverse of above)."""
        difficulty = max(1, difficulty)
        return f"{0xFFFFFFFF // difficulty:08x}"

    def to_wire(self, result_id: Optional[int] = None,
                session_id: Optional[str] = None) -> dict:
        """Wire frame: login result when result_id given, else a job push."""
        job = {
            "job_id": self.job_id,
            "blob": self.blob,
            "target": self.target,
            "algo": self.algo,
            "height": self.height,
        }
        if result_id is not None:
            return {
                "id": result_id,
                "jsonrpc": "2.0",
                "result": {"id": session_id, "job": job, "status": "OK"},
                "error": None,
            }
        return {"jsonrpc": "2.0", "method": "job", "params": job}


@dataclass(frozen=True)
class LoginResult:
    """Pool -> miner login acknowledgement with the first job."""

    msg_id: int
    session_id: str
    job: JobNotification

    def to_wire(self) -> dict:
        """Wire frame for the login acknowledgement with first job."""
        return self.job.to_wire(result_id=self.msg_id, session_id=self.session_id)


@dataclass(frozen=True)
class SubmitRequest:
    """Miner -> pool share submission."""

    msg_id: int
    session_id: str
    job_id: str
    nonce: str
    result_hash: str

    def to_wire(self) -> dict:
        """Wire frame for a share submission."""
        return {
            "id": self.msg_id,
            "jsonrpc": "2.0",
            "method": "submit",
            "params": {
                "id": self.session_id,
                "job_id": self.job_id,
                "nonce": self.nonce,
                "result": self.result_hash,
            },
        }


@dataclass(frozen=True)
class SubmitResult:
    """Pool -> miner share acknowledgement."""

    msg_id: int
    accepted: bool
    reason: str = ""

    def to_wire(self) -> dict:
        """Wire frame for a share acknowledgement or rejection."""
        if self.accepted:
            return {
                "id": self.msg_id,
                "jsonrpc": "2.0",
                "result": {"status": "OK"},
                "error": None,
            }
        return {
            "id": self.msg_id,
            "jsonrpc": "2.0",
            "result": None,
            "error": {"code": -1, "message": self.reason or "Low difficulty share"},
        }


@dataclass(frozen=True)
class StratumError:
    """Pool -> miner fatal error (e.g. banned wallet)."""

    msg_id: Optional[int]
    code: int
    message: str

    def to_wire(self) -> dict:
        """Wire frame for a fatal error response."""
        return {
            "id": self.msg_id,
            "jsonrpc": "2.0",
            "result": None,
            "error": {"code": self.code, "message": self.message},
        }


@dataclass(frozen=True)
class KeepAlive:
    """Miner -> pool liveness ping."""

    msg_id: int

    def to_wire(self) -> dict:
        """Wire frame for the keepalive ping."""
        return {
            "id": self.msg_id,
            "jsonrpc": "2.0",
            "method": "keepalived",
            "params": {},
        }


ParsedMessage = Union[
    LoginRequest, SubmitRequest, KeepAlive, LoginResult, SubmitResult,
    JobNotification, StratumError,
]


def parse_message(frame: dict) -> ParsedMessage:
    """Parse a wire frame into a typed message.

    Requests are recognised by their ``method``; responses by the shape
    of ``result``/``error``.
    """
    method = frame.get("method")
    if method == "login":
        params = frame.get("params") or {}
        if "login" not in params:
            raise ProtocolError("login without login parameter")
        return LoginRequest(
            msg_id=frame.get("id", 0),
            login=params["login"],
            password=params.get("pass", ""),
            agent=params.get("agent", ""),
        )
    if method == "submit":
        params = frame.get("params") or {}
        missing = {"id", "job_id", "nonce", "result"} - set(params)
        if missing:
            raise ProtocolError(f"submit missing fields: {sorted(missing)}")
        return SubmitRequest(
            msg_id=frame.get("id", 0),
            session_id=params["id"],
            job_id=params["job_id"],
            nonce=params["nonce"],
            result_hash=params["result"],
        )
    if method == "keepalived":
        return KeepAlive(msg_id=frame.get("id", 0))
    if method == "job":
        params = frame.get("params") or {}
        return _job_from_dict(params)
    if "result" in frame or "error" in frame:
        error = frame.get("error")
        if error:
            return StratumError(frame.get("id"), error.get("code", -1),
                                error.get("message", ""))
        result = frame.get("result") or {}
        if "job" in result:
            return LoginResult(
                msg_id=frame.get("id", 0),
                session_id=result.get("id", ""),
                job=_job_from_dict(result["job"]),
            )
        return SubmitResult(msg_id=frame.get("id", 0), accepted=True)
    raise ProtocolError(f"unrecognised stratum frame: {frame!r}")


def _job_from_dict(job: dict) -> JobNotification:
    try:
        return JobNotification(
            job_id=job["job_id"],
            blob=job.get("blob", ""),
            target=job.get("target", "ffffffff"),
            algo=job.get("algo", "cn/0"),
            height=job.get("height", 0),
        )
    except KeyError as exc:
        raise ProtocolError(f"job missing field: {exc}") from exc
