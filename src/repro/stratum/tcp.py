"""Real-socket Stratum transport (asyncio).

The in-memory :mod:`repro.stratum.channel` keeps simulations fast and
deterministic; this module provides the same protocol over actual TCP
for interoperability testing and for driving the pool simulator from
external processes.  The framing and message types are shared — only
the byte transport differs.

Server::

    pool = MiningPool(PoolConfig("demo"))
    server = StratumTcpServer(pool, host="127.0.0.1", port=0)
    await server.start()

Client::

    client = StratumTcpClient("127.0.0.1", server.port, login=WALLET)
    await client.connect()
    accepted = await client.mine(10)
"""

import asyncio
import hashlib
from typing import List, Optional

from repro.common.errors import ProtocolError
from repro.stratum.framing import LineFramer, encode_frame
from repro.stratum.messages import (
    JobNotification,
    LoginRequest,
    LoginResult,
    StratumError,
    SubmitRequest,
    SubmitResult,
    parse_message,
)
from repro.stratum.server import ShareSink, StratumServerSession


class _TcpChannelAdapter:
    """Adapts an asyncio writer to the Channel interface sessions use.

    Incoming bytes are pushed by the reader loop; outgoing bytes go
    straight to the socket.  The receive-callback mechanism is unused —
    the reader loop drives the session explicitly.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._incoming: List[bytes] = []
        self.closed = False
        self.peer_closed = False

    def set_receive_callback(self, callback) -> None:
        pass  # the reader loop pumps the session

    def send(self, data: bytes) -> None:
        if self.closed:
            raise ConnectionError("channel is closed")
        self._writer.write(data)

    def push(self, data: bytes) -> None:
        self._incoming.append(data)

    def receive(self) -> Optional[bytes]:
        if not self._incoming:
            return None
        return self._incoming.pop(0)

    def close(self) -> None:
        self.closed = True


class StratumTcpServer:
    """Serves a :class:`~repro.stratum.server.ShareSink` over TCP."""

    def __init__(self, sink: ShareSink, host: str = "127.0.0.1",
                 port: int = 0, current_algo: str = "cn/0") -> None:
        self._sink = sink
        self._host = host
        self._requested_port = port
        self._algo = current_algo
        self._server: Optional[asyncio.AbstractServer] = None
        self.sessions: List[StratumServerSession] = []

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port)

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or ("?", 0)
        adapter = _TcpChannelAdapter(writer)
        session = StratumServerSession(
            adapter, self._sink, current_algo=self._algo,
            src_ip=str(peer[0]))
        self.sessions.append(session)
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    break
                adapter.push(data)
                session.pump()
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            adapter.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


class StratumTcpClient:
    """Miner-side client over TCP (async mirror of StratumClient)."""

    def __init__(self, host: str, port: int, login: str, *,
                 password: str = "x", agent: str = "xmrig/2.8.1",
                 supported_algo: str = "cn/0") -> None:
        self._host = host
        self._port = port
        self.login = login
        self.password = password
        self.agent = agent
        self.supported_algo = supported_algo
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._framer = LineFramer()
        self._msg_id = 0
        self.session_id: Optional[str] = None
        self.current_job: Optional[JobNotification] = None
        self.accepted_shares = 0
        self.rejected_shares = 0
        self.last_error: Optional[StratumError] = None

    def _next_id(self) -> int:
        self._msg_id += 1
        return self._msg_id

    async def _send(self, message: dict) -> None:
        if self._writer is None:
            raise ProtocolError("not connected")
        self._writer.write(encode_frame(message))
        await self._writer.drain()

    async def _read_until_response(self, expect_id: int) -> None:
        """Read frames until the response for ``expect_id`` arrives."""
        if self._reader is None:
            raise ProtocolError("not connected")
        while True:
            data = await asyncio.wait_for(self._reader.read(4096),
                                          timeout=5.0)
            if not data:
                raise ProtocolError("connection closed by pool")
            done = False
            for frame in self._framer.feed(data):
                message = parse_message(frame)
                self._dispatch(message)
                if getattr(message, "msg_id", None) == expect_id:
                    done = True
            if done:
                return

    def _dispatch(self, message) -> None:
        if isinstance(message, LoginResult):
            self.session_id = message.session_id
            self.current_job = message.job
        elif isinstance(message, JobNotification):
            self.current_job = message
        elif isinstance(message, SubmitResult):
            if message.accepted:
                self.accepted_shares += 1
            else:
                self.rejected_shares += 1
        elif isinstance(message, StratumError):
            self.last_error = message
            self.rejected_shares += 1

    async def connect(self) -> bool:
        """Open the socket and log in; True when accepted."""
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port)
        msg_id = self._next_id()
        await self._send(LoginRequest(msg_id, self.login, self.password,
                                      self.agent).to_wire())
        await self._read_until_response(msg_id)
        return self.session_id is not None

    def _share_hash(self, nonce: int) -> str:
        if self.current_job is None:
            raise ProtocolError("no job to mine against")
        material = f"{self.current_job.blob}:{nonce}:{self.supported_algo}"
        return hashlib.sha256(material.encode("ascii")).hexdigest()

    async def submit_share(self, nonce: int) -> bool:
        """Mine one share and submit it; True when accepted."""
        if self.session_id is None or self.current_job is None:
            raise ProtocolError("submit before successful login")
        before = self.accepted_shares
        msg_id = self._next_id()
        await self._send(SubmitRequest(
            msg_id=msg_id,
            session_id=self.session_id,
            job_id=self.current_job.job_id,
            nonce=f"{nonce:08x}",
            result_hash=self._share_hash(nonce),
        ).to_wire())
        await self._read_until_response(msg_id)
        return self.accepted_shares > before

    async def mine(self, num_shares: int) -> int:
        """Submit ``num_shares`` shares; returns accepted count."""
        accepted = 0
        for nonce in range(num_shares):
            if await self.submit_share(nonce):
                accepted += 1
        return accepted

    async def close(self) -> None:
        """Close the TCP connection."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
