"""Miner-side Stratum client.

Drives a login → receive job → submit shares conversation over a
:class:`~repro.stratum.channel.Channel`.  The client mimics stock miner
behaviour: it identifies with a configurable agent string, computes
pseudo share hashes for the advertised algorithm, and — crucially for
the PoW-fork experiments — produces *invalid* shares when its supported
algorithm no longer matches the job's algorithm.
"""

import hashlib
from typing import List, Optional

from repro.common.errors import ProtocolError
from repro.stratum.channel import Channel
from repro.stratum.framing import LineFramer, encode_frame
from repro.stratum.messages import (
    JobNotification,
    LoginRequest,
    LoginResult,
    StratumError,
    SubmitRequest,
    SubmitResult,
    parse_message,
)


class StratumClient:
    """One mining connection from a (possibly infected) machine."""

    def __init__(self, channel: Channel, login: str, *,
                 password: str = "x", agent: str = "xmrig/2.8.1",
                 supported_algo: str = "cn/0") -> None:
        self._channel = channel
        self._framer = LineFramer()
        self._msg_id = 0
        self.login = login
        self.password = password
        self.agent = agent
        self.supported_algo = supported_algo
        self.session_id: Optional[str] = None
        self.current_job: Optional[JobNotification] = None
        self.accepted_shares = 0
        self.rejected_shares = 0
        self.last_error: Optional[StratumError] = None

    # -- wire helpers ---------------------------------------------------

    def _next_id(self) -> int:
        self._msg_id += 1
        return self._msg_id

    def _send(self, message: dict) -> None:
        self._channel.send(encode_frame(message))

    def _pump(self) -> List:
        """Read and parse everything the pool has sent."""
        parsed = []
        while True:
            chunk = self._channel.receive()
            if chunk is None:
                break
            for frame in self._framer.feed(chunk):
                message = parse_message(frame)
                self._dispatch(message)
                parsed.append(message)
        return parsed

    def _dispatch(self, message) -> None:
        if isinstance(message, LoginResult):
            self.session_id = message.session_id
            self.current_job = message.job
        elif isinstance(message, JobNotification):
            self.current_job = message
        elif isinstance(message, SubmitResult):
            if message.accepted:
                self.accepted_shares += 1
            else:
                self.rejected_shares += 1
        elif isinstance(message, StratumError):
            self.last_error = message
            self.rejected_shares += 1

    # -- public API -----------------------------------------------------

    def poll(self) -> None:
        """Process pending pool messages (job pushes, results)."""
        self._pump()

    def connect(self) -> bool:
        """Send login; returns True when the pool accepted the session."""
        self._send(LoginRequest(self._next_id(), self.login,
                                self.password, self.agent).to_wire())
        self._pump()
        return self.session_id is not None

    def share_hash(self, nonce: int) -> str:
        """Pseudo PoW: hash of (job blob, nonce, client algo).

        A share is valid only when the client's algorithm matches the
        job's — the substrate's stand-in for real PoW verification, and
        the mechanism behind outdated miners dying at forks.
        """
        if self.current_job is None:
            raise ProtocolError("no job to mine against")
        material = f"{self.current_job.blob}:{nonce}:{self.supported_algo}"
        return hashlib.sha256(material.encode("ascii")).hexdigest()

    def submit_share(self, nonce: int) -> bool:
        """Mine one share and submit it; True when the pool accepted."""
        if self.session_id is None or self.current_job is None:
            raise ProtocolError("submit before successful login")
        before = self.accepted_shares
        request = SubmitRequest(
            msg_id=self._next_id(),
            session_id=self.session_id,
            job_id=self.current_job.job_id,
            nonce=f"{nonce:08x}",
            result_hash=self.share_hash(nonce),
        )
        self._send(request.to_wire())
        self._pump()
        return self.accepted_shares > before

    def mine(self, num_shares: int) -> int:
        """Submit ``num_shares`` shares; returns how many were accepted."""
        accepted = 0
        for nonce in range(num_shares):
            if self.session_id is None:
                break
            if self.submit_share(nonce):
                accepted += 1
            if self.last_error and "banned" in self.last_error.message.lower():
                break
        return accepted

    def close(self) -> None:
        """Close the underlying channel."""
        self._channel.close()
