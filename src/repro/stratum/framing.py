"""Newline-delimited JSON framing for Stratum.

Real Stratum frames are single-line JSON documents terminated by ``\\n``.
``LineFramer`` is an incremental decoder that tolerates partial reads —
bytes arrive in arbitrary chunks and complete frames are yielded as
parsed JSON objects.
"""

import json
from typing import List

from repro.common.errors import ProtocolError

MAX_FRAME_BYTES = 16 * 1024


def encode_frame(message: dict) -> bytes:
    """Serialise one message to its wire form."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


class LineFramer:
    """Incremental newline-frame decoder."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[dict]:
        """Feed raw bytes; return every complete frame now available."""
        self._buffer.extend(data)
        if len(self._buffer) > MAX_FRAME_BYTES and b"\n" not in self._buffer:
            raise ProtocolError("frame exceeds maximum size without newline")
        frames: List[dict] = []
        while True:
            idx = self._buffer.find(b"\n")
            if idx < 0:
                break
            line = bytes(self._buffer[:idx])
            del self._buffer[:idx + 1]
            if not line.strip():
                continue
            try:
                frames.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"malformed JSON frame: {exc}") from exc
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet framed."""
        return len(self._buffer)
