"""Mining proxy: many bots in, one pool connection out.

Pools ban wallets that connect from suspiciously many IPs (§VI); the
countermeasure criminals deploy is a proxy that terminates every bot's
Stratum session locally and re-submits their shares upstream over a
single connection — the pool then sees exactly one IP.  The paper
aggregates samples that share a proxy into the same campaign.
"""

from typing import Dict, List, Optional

from repro.stratum.channel import Channel, make_channel_pair
from repro.stratum.client import StratumClient
from repro.stratum.server import ShareSink, StratumServerSession


class _ProxySink(ShareSink):
    """Downstream sink: counts bot shares and forwards valid ones."""

    def __init__(self, proxy: "MiningProxy") -> None:
        self._proxy = proxy

    def on_login(self, login: str, agent: str, src_ip: str) -> Optional[str]:
        # The proxy accepts any bot; upstream identity is the proxy's own.
        return None

    def on_share(self, login: str, valid: bool, src_ip: str,
                 difficulty: int = 1) -> None:
        self._proxy._on_downstream_share(login, valid, src_ip)


class MiningProxy:
    """Aggregates downstream bot sessions into one upstream session.

    ``upstream`` is the proxy's own :class:`StratumClient`, logged in at
    the real pool with the operator's wallet.  Each bot that connects via
    :meth:`accept_bot` gets a local server session whose algorithm always
    matches upstream, so bots never see fork mismatches directly — the
    proxy operator is the one who must keep the upstream side updated.
    """

    def __init__(self, upstream: StratumClient, proxy_ip: str) -> None:
        self.upstream = upstream
        self.proxy_ip = proxy_ip
        self._sessions: List[StratumServerSession] = []
        self._bot_ips: set = set()
        self.downstream_shares = 0
        self.forwarded_shares = 0
        self._nonce = 0

    def connect_upstream(self) -> bool:
        """Log the proxy in at the real pool."""
        return self.upstream.connect()

    def accept_bot(self, src_ip: str) -> Channel:
        """Accept one bot connection; returns the bot-side channel end."""
        bot_end, proxy_end = make_channel_pair()
        algo = (self.upstream.current_job.algo
                if self.upstream.current_job else "cn/0")
        session = StratumServerSession(
            proxy_end, _ProxySink(self), current_algo=algo, src_ip=src_ip,
        )
        self._sessions.append(session)
        self._bot_ips.add(src_ip)
        return bot_end

    def pump(self) -> None:
        """Process pending downstream traffic."""
        for session in self._sessions:
            session.pump()

    def _on_downstream_share(self, login: str, valid: bool, src_ip: str) -> None:
        self.downstream_shares += 1
        if not valid or self.upstream.session_id is None:
            return
        self._nonce += 1
        if self.upstream.submit_share(self._nonce):
            self.forwarded_shares += 1

    @property
    def distinct_bot_ips(self) -> int:
        return len(self._bot_ips)

    def stats(self) -> Dict[str, int]:
        """Counters: bots, distinct IPs, downstream/forwarded shares."""
        return {
            "bots": len(self._sessions),
            "distinct_ips": self.distinct_bot_ips,
            "downstream_shares": self.downstream_shares,
            "forwarded_shares": self.forwarded_shares,
        }
