"""Pool-side Stratum server session.

One :class:`StratumServerSession` handles one miner connection.  Policy
(accept/ban logins, credit shares) is delegated to a :class:`ShareSink`,
implemented by the pool simulator in :mod:`repro.pools`.  Share validity
is checked by recomputing the pseudo-PoW for the *job's* algorithm: a
miner running pre-fork software hashes with the wrong algorithm and all
of its shares are rejected, exactly the "mining with an outdated
algorithm" failure mode of §VI.
"""

import hashlib
import itertools
from typing import Optional

from repro.common.errors import ProtocolError
from repro.stratum.channel import Channel
from repro.stratum.framing import LineFramer, encode_frame
from repro.stratum.messages import (
    JobNotification,
    KeepAlive,
    LoginRequest,
    LoginResult,
    StratumError,
    SubmitRequest,
    SubmitResult,
    parse_message,
)

_session_counter = itertools.count(1)


class ShareSink:
    """Policy interface the pool implements.

    The default implementation accepts everything; the pool simulator
    overrides these to enforce ban policies and do reward accounting.
    """

    def on_login(self, login: str, agent: str, src_ip: str) -> Optional[str]:
        """Return None to accept, or a rejection reason string."""
        return None

    def on_share(self, login: str, valid: bool, src_ip: str,
                 difficulty: int = 1) -> None:
        """Called for every submitted share with its validity.

        ``difficulty`` is the share difficulty of the job it solved —
        one high-difficulty share proves as much work as ``difficulty``
        unit shares, which is how vardiff keeps accounting fair.
        """


class StratumServerSession:
    """Server half of one miner connection."""

    #: shares per retarget window before vardiff doubles the difficulty.
    VARDIFF_WINDOW = 16

    def __init__(self, channel: Channel, sink: ShareSink, *,
                 current_algo: str = "cn/0", src_ip: str = "0.0.0.0",
                 job_seed: str = "deadbeef", difficulty: int = 1,
                 vardiff: bool = False) -> None:
        self._channel = channel
        self._framer = LineFramer()
        self._sink = sink
        self._algo = current_algo
        self._src_ip = src_ip
        self._job_seed = job_seed
        self._job_counter = 0
        self._difficulty = max(1, difficulty)
        self._vardiff = vardiff
        self._shares_this_window = 0
        self.session_id: Optional[str] = None
        self.login: Optional[str] = None
        self.agent: Optional[str] = None
        self.current_job: Optional[JobNotification] = None
        self.valid_shares = 0
        self.invalid_shares = 0
        # Process client bytes as they arrive (blocking-socket semantics).
        channel.set_receive_callback(self.pump)

    # -- job management ---------------------------------------------------

    def _make_job(self) -> JobNotification:
        self._job_counter += 1
        blob = hashlib.sha256(
            f"{self._job_seed}:{self._job_counter}".encode("ascii")
        ).hexdigest()
        return JobNotification(
            job_id=f"job{self._job_counter:06d}",
            blob=blob,
            target=JobNotification.target_for_difficulty(self._difficulty),
            algo=self._algo,
            height=self._job_counter,
        )

    def set_algo(self, algo: str) -> None:
        """Switch PoW algorithm (a fork); pushes a new job to the miner."""
        self._algo = algo
        if self.session_id is not None:
            self.current_job = self._make_job()
            self._send(self.current_job.to_wire())

    @property
    def difficulty(self) -> int:
        return self._difficulty

    def set_difficulty(self, difficulty: int) -> None:
        """Retarget the session; pushes a new job at the new target."""
        self._difficulty = max(1, difficulty)
        self._shares_this_window = 0
        if self.session_id is not None:
            self.current_job = self._make_job()
            self._send(self.current_job.to_wire())

    # -- wire -------------------------------------------------------------

    def _send(self, message: dict) -> None:
        if not self._channel.closed and not self._channel.peer_closed:
            self._channel.send(encode_frame(message))

    def pump(self) -> None:
        """Process every request the miner has sent so far."""
        while True:
            chunk = self._channel.receive()
            if chunk is None:
                break
            for frame in self._framer.feed(chunk):
                self._handle(parse_message(frame))

    def _handle(self, message) -> None:
        if isinstance(message, LoginRequest):
            self._handle_login(message)
        elif isinstance(message, SubmitRequest):
            self._handle_submit(message)
        elif isinstance(message, KeepAlive):
            self._send(SubmitResult(message.msg_id, accepted=True).to_wire())
        else:
            raise ProtocolError(f"unexpected client message: {message!r}")

    def _handle_login(self, request: LoginRequest) -> None:
        reason = self._sink.on_login(request.login, request.agent, self._src_ip)
        if reason is not None:
            self._send(StratumError(request.msg_id, -32000, reason).to_wire())
            return
        self.login = request.login
        self.agent = request.agent
        self.session_id = f"sess{next(_session_counter):08d}"
        self.current_job = self._make_job()
        self._send(LoginResult(request.msg_id, self.session_id,
                               self.current_job).to_wire())

    def _handle_submit(self, request: SubmitRequest) -> None:
        if self.session_id is None or request.session_id != self.session_id:
            self._send(StratumError(request.msg_id, -32001,
                                    "Unauthenticated").to_wire())
            return
        valid = self._verify_share(request)
        difficulty = (self.current_job.difficulty
                      if self.current_job else 1)
        self._sink.on_share(self.login or "", valid, self._src_ip,
                            difficulty=difficulty)
        if valid:
            self.valid_shares += 1
            self._send(SubmitResult(request.msg_id, accepted=True).to_wire())
            # vardiff: a miner flooding cheap shares gets retargeted so
            # the pool's share-verification load stays bounded.
            if self._vardiff:
                self._shares_this_window += 1
                if self._shares_this_window >= self.VARDIFF_WINDOW:
                    self.set_difficulty(self._difficulty * 2)
        else:
            self.invalid_shares += 1
            self._send(SubmitResult(request.msg_id, accepted=False,
                                    reason="Low difficulty share").to_wire())

    def _verify_share(self, request: SubmitRequest) -> bool:
        """Recompute the pseudo-PoW with the job's algorithm."""
        if self.current_job is None or request.job_id != self.current_job.job_id:
            return False
        try:
            nonce = int(request.nonce, 16)
        except ValueError:
            return False
        expected = hashlib.sha256(
            f"{self.current_job.blob}:{nonce}:{self.current_job.algo}"
            .encode("ascii")
        ).hexdigest()
        return request.result_hash == expected
