"""ssdeep-style context-triggered piecewise hashing.

Algorithm (following Kornblum 2006, the paper's citation [36]):

1. A 7-byte rolling hash scans the input.  Whenever
   ``rolling % blocksize == blocksize - 1`` a block boundary is emitted.
2. Each block is hashed with FNV-1a and mapped to one character of the
   base64 alphabet; the concatenation is the signature.
3. The block size is the smallest ``3 * 2**k`` whose signature fits in
   64 characters; the hash string also carries the signature at twice
   the block size, so hashes one octave apart remain comparable.
4. Similarity is a weighted edit distance between matching-blocksize
   signatures, scaled to [0, 100]; 100 means near-identical.
"""

from dataclasses import dataclass
from typing import List, Optional

try:  # vectorised rolling-hash path; the pure-Python loop is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

_B64 = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
_SPAMSUM_LENGTH = 64
_MIN_BLOCKSIZE = 3
_WINDOW = 7

#: below this size the numpy setup cost exceeds the per-byte win.
_VECTOR_MIN_BYTES = 64


__all__ = [
    "FuzzyHash",
    "compare",
    "compute",
    "distance",
    "edit_distance",
    "score_with_grams",
    "signature_grams",
]


class _RollingHash:
    """Adler-style rolling hash over a 7-byte window."""

    __slots__ = ("_window", "_pos", "_h1", "_h2", "_h3")

    def __init__(self) -> None:
        self._window = bytearray(_WINDOW)
        self._pos = 0
        self._h1 = 0
        self._h2 = 0
        self._h3 = 0

    def update(self, byte: int) -> int:
        old = self._window[self._pos % _WINDOW]
        self._h2 -= self._h1
        self._h2 += _WINDOW * byte
        self._h1 += byte
        self._h1 -= old
        self._window[self._pos % _WINDOW] = byte
        self._pos += 1
        self._h3 = ((self._h3 << 5) ^ byte) & 0xFFFFFFFF
        return (self._h1 + self._h2 + self._h3) & 0xFFFFFFFF


_FNV_INIT = 0x811C9DC5


def _piecewise_signature(data: bytes, blocksize: int) -> str:
    """Signature at one block size (uncapped length).

    The rolling hash is inlined here: this loop runs once per input byte
    and is the hot path of catalog-scale fuzzy matching.
    """
    window = bytearray(_WINDOW)
    pos = 0
    h1 = h2 = h3 = 0
    piece = _FNV_INIT
    trigger = blocksize - 1
    out: List[str] = []
    for byte in data:
        piece = ((piece ^ byte) * 0x01000193) & 0xFFFFFFFF
        widx = pos % _WINDOW
        old = window[widx]
        h2 = h2 - h1 + _WINDOW * byte
        h1 = h1 + byte - old
        window[widx] = byte
        pos += 1
        h3 = ((h3 << 5) ^ byte) & 0xFFFFFFFF
        if (h1 + h2 + h3) % blocksize == trigger:
            out.append(_B64[piece % 64])
            piece = _FNV_INIT
    if piece != _FNV_INIT or not out:
        out.append(_B64[piece % 64])
    return "".join(out)


def _rolling_totals(data: bytes):
    """The rolling-hash value at every byte position, vectorised.

    All three components of the spamsum rolling hash are functions of
    only the last 7 bytes (h3's older contributions shift past the
    32-bit mask), so each is a sliding-window reduction: one numpy pass
    replaces the per-byte Python loop.  Returns None when numpy is
    unavailable or the input is too small to amortise array setup.
    """
    if _np is None or len(data) < _VECTOR_MIN_BYTES:
        return None
    arr = _np.frombuffer(bytes(data), dtype=_np.uint8)
    n = arr.shape[0]
    padded = _np.zeros(n + _WINDOW - 1, dtype=_np.uint64)
    padded[_WINDOW - 1:] = arr
    h1 = _np.zeros(n, dtype=_np.uint64)
    h2 = _np.zeros(n, dtype=_np.uint64)
    h3 = _np.zeros(n, dtype=_np.uint64)
    for lag in range(_WINDOW):
        window = padded[_WINDOW - 1 - lag:_WINDOW - 1 - lag + n]
        h1 += window
        h2 += _np.uint64(_WINDOW - lag) * window
        h3 ^= window << _np.uint64(5 * lag)
    return h1 + h2 + (h3 & _np.uint64(0xFFFFFFFF))


def _fnv_span(data: bytes, start: int, end: int) -> int:
    """FNV-1a over ``data[start:end]`` (the per-block piece hash)."""
    piece = _FNV_INIT
    for byte in memoryview(data)[start:end]:
        piece = ((piece ^ byte) * 0x01000193) & 0xFFFFFFFF
    return piece


def _boundaries(totals, blocksize: int):
    """Indices where the rolling hash triggers a block boundary."""
    return _np.nonzero(totals % _np.uint64(blocksize)
                       == _np.uint64(blocksize - 1))[0]


def _signature_from_totals(data: bytes, totals, blocksize: int) -> str:
    """Same output as :func:`_piecewise_signature`, boundary positions
    taken from the precomputed rolling-hash array."""
    out: List[str] = []
    prev = 0
    for idx in _boundaries(totals, blocksize).tolist():
        out.append(_B64[_fnv_span(data, prev, idx + 1) % 64])
        prev = idx + 1
    tail_piece = _fnv_span(data, prev, len(data))
    if tail_piece != _FNV_INIT or not out:
        out.append(_B64[tail_piece % 64])
    return "".join(out)


def _signature_length(data: bytes, totals, blocksize: int) -> int:
    """len() of the signature at ``blocksize`` without hashing every
    block — only the tail piece needs an FNV pass, which lets the
    block-size search below discard candidate sizes almost for free."""
    positions = _boundaries(totals, blocksize)
    count = int(positions.shape[0])
    prev = int(positions[-1]) + 1 if count else 0
    if count == 0 or _fnv_span(data, prev, len(data)) != _FNV_INIT:
        count += 1
    return count


@dataclass(frozen=True)
class FuzzyHash:
    """A CTPH value: ``blocksize:sig:double_sig``."""

    blocksize: int
    signature: str
    double_signature: str

    def __str__(self) -> str:
        return f"{self.blocksize}:{self.signature}:{self.double_signature}"

    @classmethod
    def parse(cls, text: str) -> "FuzzyHash":
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(f"malformed fuzzy hash: {text!r}")
        return cls(int(parts[0]), parts[1], parts[2])


def compute(data: bytes) -> FuzzyHash:
    """Compute the CTPH of ``data``.

    The block size is first *guessed* from the input length (expected
    signature length ~= len/blocksize), then adjusted at most a couple
    of steps — the ssdeep trick that avoids a full doubling search and
    keeps hashing at ~2 passes over the input.

    When numpy is available the rolling hash is evaluated once as a
    vectorised sliding-window pass; the block-size search then probes
    candidate sizes via boundary *counts* (near-free) and only the two
    final signatures pay a per-block FNV pass.  Output is bit-identical
    to the pure-Python loop.
    """
    totals = _rolling_totals(data)
    blocksize = _MIN_BLOCKSIZE
    while blocksize * _SPAMSUM_LENGTH < len(data):
        blocksize *= 2
    if totals is not None:
        # Adjust on signature *lengths* only, then hash the winner.
        while _signature_length(data, totals, blocksize) > _SPAMSUM_LENGTH:
            blocksize *= 2
        while (blocksize > _MIN_BLOCKSIZE
               and _signature_length(data, totals, blocksize)
               < _SPAMSUM_LENGTH // 4):
            if _signature_length(data, totals,
                                 blocksize // 2) > _SPAMSUM_LENGTH:
                break
            blocksize //= 2
        signature = _signature_from_totals(data, totals, blocksize)
        double_signature = _signature_from_totals(
            data, totals, blocksize * 2)[:_SPAMSUM_LENGTH]
        return FuzzyHash(blocksize, signature[:_SPAMSUM_LENGTH],
                         double_signature)
    signature = _piecewise_signature(data, blocksize)
    # Adjust: too long -> grow; degenerately short -> shrink (bounded).
    while len(signature) > _SPAMSUM_LENGTH:
        blocksize *= 2
        signature = _piecewise_signature(data, blocksize)
    while (blocksize > _MIN_BLOCKSIZE
           and len(signature) < _SPAMSUM_LENGTH // 4):
        candidate = _piecewise_signature(data, blocksize // 2)
        if len(candidate) > _SPAMSUM_LENGTH:
            break
        blocksize //= 2
        signature = candidate
    double_signature = _piecewise_signature(data, blocksize * 2)[:_SPAMSUM_LENGTH]
    return FuzzyHash(blocksize, signature[:_SPAMSUM_LENGTH], double_signature)


def _edit_distance(a: str, b: str) -> int:
    """Levenshtein distance with O(min(len)) memory."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def _has_common_substring(a: str, b: str, length: int = 7) -> bool:
    """Require a common 7-gram, like ssdeep, to avoid random matches."""
    if len(a) < length or len(b) < length:
        return False
    grams = {a[i:i + length] for i in range(len(a) - length + 1)}
    return any(b[i:i + length] in grams for i in range(len(b) - length + 1))


def _score_strings(a: str, b: str, blocksize: int) -> int:
    if not _has_common_substring(a, b):
        return 0
    dist = _edit_distance(a, b)
    # Scale: identical -> 100; completely different -> 0.
    score = 100 - (100 * dist) // max(len(a), len(b))
    # Cap very short signatures which cannot support high confidence.
    cap = blocksize // _MIN_BLOCKSIZE * min(len(a), len(b))
    return max(0, min(score, cap))


def compare(h1: FuzzyHash, h2: FuzzyHash) -> int:
    """Similarity score in [0, 100] between two fuzzy hashes.

    Hashes are comparable when their block sizes are equal or one octave
    apart; otherwise the score is 0 (ssdeep semantics).
    """
    if h1.blocksize == h2.blocksize:
        return max(
            _score_strings(h1.signature, h2.signature, h1.blocksize),
            _score_strings(h1.double_signature, h2.double_signature,
                           h1.blocksize * 2),
        )
    if h1.blocksize == h2.blocksize * 2:
        return _score_strings(h1.signature, h2.double_signature, h1.blocksize)
    if h2.blocksize == h1.blocksize * 2:
        return _score_strings(h1.double_signature, h2.signature, h2.blocksize)
    return 0


def distance(h1: FuzzyHash, h2: FuzzyHash) -> float:
    """Distance in [0, 1]: the paper's stock-tool threshold is <= 0.1."""
    return 1.0 - compare(h1, h2) / 100.0


# -- bulk-matching helpers (used by catalog-scale attribution) -------------

def signature_grams(signature: str, length: int = 7) -> frozenset:
    """The 7-gram set of a signature (the common-substring prefilter)."""
    if len(signature) < length:
        return frozenset()
    return frozenset(signature[i:i + length]
                     for i in range(len(signature) - length + 1))


def score_with_grams(sig_a: str, grams_a: frozenset, sig_b: str,
                     grams_b: frozenset, blocksize: int) -> int:
    """Like the internal scorer, but with precomputed gram sets."""
    if not grams_a or not grams_b or grams_a.isdisjoint(grams_b):
        return 0
    dist = _edit_distance(sig_a, sig_b)
    score = 100 - (100 * dist) // max(len(sig_a), len(sig_b))
    cap = blocksize // _MIN_BLOCKSIZE * min(len(sig_a), len(sig_b))
    return max(0, min(score, cap))


def edit_distance(a: str, b: str) -> int:
    """Public alias for the Levenshtein helper."""
    return _edit_distance(a, b)
