"""Context-triggered piecewise hashing (CTPH) substrate.

The paper attributes dropped binaries to stock mining tools (xmrig,
claymore, ...) by comparing fuzzy hashes with a conservative distance
threshold of 0.1 (§III-E, Table IX).  This is a from-scratch ssdeep-style
implementation: a rolling hash triggers block boundaries, a piecewise
FNV-1a hash maps each block to one base64 character, and similarity is an
edit-distance score in [0, 100].
"""

from repro.fuzzyhash.ctph import (
    compare,
    compute,
    distance,
    FuzzyHash,
)

__all__ = ["compare", "compute", "distance", "FuzzyHash"]
